file(REMOVE_RECURSE
  "CMakeFiles/voltcache_linker.dir/image.cpp.o"
  "CMakeFiles/voltcache_linker.dir/image.cpp.o.d"
  "CMakeFiles/voltcache_linker.dir/linker.cpp.o"
  "CMakeFiles/voltcache_linker.dir/linker.cpp.o.d"
  "libvoltcache_linker.a"
  "libvoltcache_linker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_linker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
