file(REMOVE_RECURSE
  "CMakeFiles/voltcache_sram.dir/cacti_lite.cpp.o"
  "CMakeFiles/voltcache_sram.dir/cacti_lite.cpp.o.d"
  "CMakeFiles/voltcache_sram.dir/cells.cpp.o"
  "CMakeFiles/voltcache_sram.dir/cells.cpp.o.d"
  "CMakeFiles/voltcache_sram.dir/delay_model.cpp.o"
  "CMakeFiles/voltcache_sram.dir/delay_model.cpp.o.d"
  "libvoltcache_sram.a"
  "libvoltcache_sram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_sram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
