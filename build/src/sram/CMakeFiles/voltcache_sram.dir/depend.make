# Empty dependencies file for voltcache_sram.
# This may be replaced when dependencies are built.
