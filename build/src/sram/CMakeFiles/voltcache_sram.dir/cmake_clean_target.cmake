file(REMOVE_RECURSE
  "libvoltcache_sram.a"
)
