
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/cfg.cpp" "src/compiler/CMakeFiles/voltcache_compiler.dir/cfg.cpp.o" "gcc" "src/compiler/CMakeFiles/voltcache_compiler.dir/cfg.cpp.o.d"
  "/root/repo/src/compiler/passes.cpp" "src/compiler/CMakeFiles/voltcache_compiler.dir/passes.cpp.o" "gcc" "src/compiler/CMakeFiles/voltcache_compiler.dir/passes.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/voltcache_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/voltcache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
