file(REMOVE_RECURSE
  "CMakeFiles/voltcache_compiler.dir/cfg.cpp.o"
  "CMakeFiles/voltcache_compiler.dir/cfg.cpp.o.d"
  "CMakeFiles/voltcache_compiler.dir/passes.cpp.o"
  "CMakeFiles/voltcache_compiler.dir/passes.cpp.o.d"
  "libvoltcache_compiler.a"
  "libvoltcache_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
