# Empty compiler generated dependencies file for voltcache_compiler.
# This may be replaced when dependencies are built.
