file(REMOVE_RECURSE
  "libvoltcache_compiler.a"
)
