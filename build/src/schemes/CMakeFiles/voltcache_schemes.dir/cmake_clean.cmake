file(REMOVE_RECURSE
  "CMakeFiles/voltcache_schemes.dir/bbr.cpp.o"
  "CMakeFiles/voltcache_schemes.dir/bbr.cpp.o.d"
  "CMakeFiles/voltcache_schemes.dir/conventional.cpp.o"
  "CMakeFiles/voltcache_schemes.dir/conventional.cpp.o.d"
  "CMakeFiles/voltcache_schemes.dir/factory.cpp.o"
  "CMakeFiles/voltcache_schemes.dir/factory.cpp.o.d"
  "CMakeFiles/voltcache_schemes.dir/fault_buffer.cpp.o"
  "CMakeFiles/voltcache_schemes.dir/fault_buffer.cpp.o.d"
  "CMakeFiles/voltcache_schemes.dir/ffw.cpp.o"
  "CMakeFiles/voltcache_schemes.dir/ffw.cpp.o.d"
  "CMakeFiles/voltcache_schemes.dir/scheme.cpp.o"
  "CMakeFiles/voltcache_schemes.dir/scheme.cpp.o.d"
  "CMakeFiles/voltcache_schemes.dir/static_overheads.cpp.o"
  "CMakeFiles/voltcache_schemes.dir/static_overheads.cpp.o.d"
  "CMakeFiles/voltcache_schemes.dir/wilkerson.cpp.o"
  "CMakeFiles/voltcache_schemes.dir/wilkerson.cpp.o.d"
  "CMakeFiles/voltcache_schemes.dir/word_disable.cpp.o"
  "CMakeFiles/voltcache_schemes.dir/word_disable.cpp.o.d"
  "libvoltcache_schemes.a"
  "libvoltcache_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
