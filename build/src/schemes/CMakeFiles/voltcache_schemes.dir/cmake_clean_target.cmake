file(REMOVE_RECURSE
  "libvoltcache_schemes.a"
)
