
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/schemes/bbr.cpp" "src/schemes/CMakeFiles/voltcache_schemes.dir/bbr.cpp.o" "gcc" "src/schemes/CMakeFiles/voltcache_schemes.dir/bbr.cpp.o.d"
  "/root/repo/src/schemes/conventional.cpp" "src/schemes/CMakeFiles/voltcache_schemes.dir/conventional.cpp.o" "gcc" "src/schemes/CMakeFiles/voltcache_schemes.dir/conventional.cpp.o.d"
  "/root/repo/src/schemes/factory.cpp" "src/schemes/CMakeFiles/voltcache_schemes.dir/factory.cpp.o" "gcc" "src/schemes/CMakeFiles/voltcache_schemes.dir/factory.cpp.o.d"
  "/root/repo/src/schemes/fault_buffer.cpp" "src/schemes/CMakeFiles/voltcache_schemes.dir/fault_buffer.cpp.o" "gcc" "src/schemes/CMakeFiles/voltcache_schemes.dir/fault_buffer.cpp.o.d"
  "/root/repo/src/schemes/ffw.cpp" "src/schemes/CMakeFiles/voltcache_schemes.dir/ffw.cpp.o" "gcc" "src/schemes/CMakeFiles/voltcache_schemes.dir/ffw.cpp.o.d"
  "/root/repo/src/schemes/scheme.cpp" "src/schemes/CMakeFiles/voltcache_schemes.dir/scheme.cpp.o" "gcc" "src/schemes/CMakeFiles/voltcache_schemes.dir/scheme.cpp.o.d"
  "/root/repo/src/schemes/static_overheads.cpp" "src/schemes/CMakeFiles/voltcache_schemes.dir/static_overheads.cpp.o" "gcc" "src/schemes/CMakeFiles/voltcache_schemes.dir/static_overheads.cpp.o.d"
  "/root/repo/src/schemes/wilkerson.cpp" "src/schemes/CMakeFiles/voltcache_schemes.dir/wilkerson.cpp.o" "gcc" "src/schemes/CMakeFiles/voltcache_schemes.dir/wilkerson.cpp.o.d"
  "/root/repo/src/schemes/word_disable.cpp" "src/schemes/CMakeFiles/voltcache_schemes.dir/word_disable.cpp.o" "gcc" "src/schemes/CMakeFiles/voltcache_schemes.dir/word_disable.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/voltcache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/voltcache_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/voltcache_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/voltcache_cache.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
