# Empty dependencies file for voltcache_schemes.
# This may be replaced when dependencies are built.
