file(REMOVE_RECURSE
  "CMakeFiles/voltcache_core.dir/sweep.cpp.o"
  "CMakeFiles/voltcache_core.dir/sweep.cpp.o.d"
  "CMakeFiles/voltcache_core.dir/system.cpp.o"
  "CMakeFiles/voltcache_core.dir/system.cpp.o.d"
  "libvoltcache_core.a"
  "libvoltcache_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
