# Empty compiler generated dependencies file for voltcache_core.
# This may be replaced when dependencies are built.
