file(REMOVE_RECURSE
  "libvoltcache_core.a"
)
