file(REMOVE_RECURSE
  "CMakeFiles/voltcache_power.dir/dvfs.cpp.o"
  "CMakeFiles/voltcache_power.dir/dvfs.cpp.o.d"
  "CMakeFiles/voltcache_power.dir/energy_model.cpp.o"
  "CMakeFiles/voltcache_power.dir/energy_model.cpp.o.d"
  "libvoltcache_power.a"
  "libvoltcache_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
