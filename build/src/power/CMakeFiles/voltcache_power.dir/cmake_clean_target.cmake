file(REMOVE_RECURSE
  "libvoltcache_power.a"
)
