# Empty dependencies file for voltcache_power.
# This may be replaced when dependencies are built.
