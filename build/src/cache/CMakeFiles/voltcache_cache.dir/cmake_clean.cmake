file(REMOVE_RECURSE
  "CMakeFiles/voltcache_cache.dir/l2_cache.cpp.o"
  "CMakeFiles/voltcache_cache.dir/l2_cache.cpp.o.d"
  "CMakeFiles/voltcache_cache.dir/tag_array.cpp.o"
  "CMakeFiles/voltcache_cache.dir/tag_array.cpp.o.d"
  "libvoltcache_cache.a"
  "libvoltcache_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
