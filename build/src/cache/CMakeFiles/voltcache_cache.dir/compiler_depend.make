# Empty compiler generated dependencies file for voltcache_cache.
# This may be replaced when dependencies are built.
