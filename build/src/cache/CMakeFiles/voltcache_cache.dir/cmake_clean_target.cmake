file(REMOVE_RECURSE
  "libvoltcache_cache.a"
)
