
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/l2_cache.cpp" "src/cache/CMakeFiles/voltcache_cache.dir/l2_cache.cpp.o" "gcc" "src/cache/CMakeFiles/voltcache_cache.dir/l2_cache.cpp.o.d"
  "/root/repo/src/cache/tag_array.cpp" "src/cache/CMakeFiles/voltcache_cache.dir/tag_array.cpp.o" "gcc" "src/cache/CMakeFiles/voltcache_cache.dir/tag_array.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/voltcache_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/voltcache_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/voltcache_faults.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
