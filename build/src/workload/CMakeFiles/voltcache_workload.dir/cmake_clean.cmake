file(REMOVE_RECURSE
  "CMakeFiles/voltcache_workload.dir/bench_adpcm.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_adpcm.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/bench_basicmath.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_basicmath.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/bench_bzip2.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_bzip2.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/bench_crc32.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_crc32.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/bench_dijkstra.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_dijkstra.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/bench_hmmer.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_hmmer.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/bench_libquantum.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_libquantum.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/bench_mcf.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_mcf.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/bench_patricia.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_patricia.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/bench_qsort.cpp.o"
  "CMakeFiles/voltcache_workload.dir/bench_qsort.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/locality.cpp.o"
  "CMakeFiles/voltcache_workload.dir/locality.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/stdlib.cpp.o"
  "CMakeFiles/voltcache_workload.dir/stdlib.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/synthetic.cpp.o"
  "CMakeFiles/voltcache_workload.dir/synthetic.cpp.o.d"
  "CMakeFiles/voltcache_workload.dir/workload.cpp.o"
  "CMakeFiles/voltcache_workload.dir/workload.cpp.o.d"
  "libvoltcache_workload.a"
  "libvoltcache_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
