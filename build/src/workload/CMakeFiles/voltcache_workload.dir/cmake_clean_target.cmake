file(REMOVE_RECURSE
  "libvoltcache_workload.a"
)
