
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/bench_adpcm.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_adpcm.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_adpcm.cpp.o.d"
  "/root/repo/src/workload/bench_basicmath.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_basicmath.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_basicmath.cpp.o.d"
  "/root/repo/src/workload/bench_bzip2.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_bzip2.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_bzip2.cpp.o.d"
  "/root/repo/src/workload/bench_crc32.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_crc32.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_crc32.cpp.o.d"
  "/root/repo/src/workload/bench_dijkstra.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_dijkstra.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_dijkstra.cpp.o.d"
  "/root/repo/src/workload/bench_hmmer.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_hmmer.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_hmmer.cpp.o.d"
  "/root/repo/src/workload/bench_libquantum.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_libquantum.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_libquantum.cpp.o.d"
  "/root/repo/src/workload/bench_mcf.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_mcf.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_mcf.cpp.o.d"
  "/root/repo/src/workload/bench_patricia.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_patricia.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_patricia.cpp.o.d"
  "/root/repo/src/workload/bench_qsort.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/bench_qsort.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/bench_qsort.cpp.o.d"
  "/root/repo/src/workload/locality.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/locality.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/locality.cpp.o.d"
  "/root/repo/src/workload/stdlib.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/stdlib.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/stdlib.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/synthetic.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/synthetic.cpp.o.d"
  "/root/repo/src/workload/workload.cpp" "src/workload/CMakeFiles/voltcache_workload.dir/workload.cpp.o" "gcc" "src/workload/CMakeFiles/voltcache_workload.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/voltcache_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/voltcache_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/voltcache_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/voltcache_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/voltcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/voltcache_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/voltcache_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/voltcache_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/voltcache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
