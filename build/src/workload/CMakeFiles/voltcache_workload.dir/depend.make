# Empty dependencies file for voltcache_workload.
# This may be replaced when dependencies are built.
