# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("faults")
subdirs("sram")
subdirs("power")
subdirs("isa")
subdirs("compiler")
subdirs("linker")
subdirs("cache")
subdirs("schemes")
subdirs("cpu")
subdirs("workload")
subdirs("core")
