file(REMOVE_RECURSE
  "libvoltcache_faults.a"
)
