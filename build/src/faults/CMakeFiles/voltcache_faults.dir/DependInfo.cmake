
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/faults/bist.cpp" "src/faults/CMakeFiles/voltcache_faults.dir/bist.cpp.o" "gcc" "src/faults/CMakeFiles/voltcache_faults.dir/bist.cpp.o.d"
  "/root/repo/src/faults/failure_model.cpp" "src/faults/CMakeFiles/voltcache_faults.dir/failure_model.cpp.o" "gcc" "src/faults/CMakeFiles/voltcache_faults.dir/failure_model.cpp.o.d"
  "/root/repo/src/faults/fault_map.cpp" "src/faults/CMakeFiles/voltcache_faults.dir/fault_map.cpp.o" "gcc" "src/faults/CMakeFiles/voltcache_faults.dir/fault_map.cpp.o.d"
  "/root/repo/src/faults/fault_map_io.cpp" "src/faults/CMakeFiles/voltcache_faults.dir/fault_map_io.cpp.o" "gcc" "src/faults/CMakeFiles/voltcache_faults.dir/fault_map_io.cpp.o.d"
  "/root/repo/src/faults/yield.cpp" "src/faults/CMakeFiles/voltcache_faults.dir/yield.cpp.o" "gcc" "src/faults/CMakeFiles/voltcache_faults.dir/yield.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/voltcache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
