# Empty compiler generated dependencies file for voltcache_faults.
# This may be replaced when dependencies are built.
