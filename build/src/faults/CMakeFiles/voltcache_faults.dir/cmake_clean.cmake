file(REMOVE_RECURSE
  "CMakeFiles/voltcache_faults.dir/bist.cpp.o"
  "CMakeFiles/voltcache_faults.dir/bist.cpp.o.d"
  "CMakeFiles/voltcache_faults.dir/failure_model.cpp.o"
  "CMakeFiles/voltcache_faults.dir/failure_model.cpp.o.d"
  "CMakeFiles/voltcache_faults.dir/fault_map.cpp.o"
  "CMakeFiles/voltcache_faults.dir/fault_map.cpp.o.d"
  "CMakeFiles/voltcache_faults.dir/fault_map_io.cpp.o"
  "CMakeFiles/voltcache_faults.dir/fault_map_io.cpp.o.d"
  "CMakeFiles/voltcache_faults.dir/yield.cpp.o"
  "CMakeFiles/voltcache_faults.dir/yield.cpp.o.d"
  "libvoltcache_faults.a"
  "libvoltcache_faults.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/voltcache_faults.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
