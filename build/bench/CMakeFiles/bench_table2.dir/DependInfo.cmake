
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table2.cpp" "bench/CMakeFiles/bench_table2.dir/bench_table2.cpp.o" "gcc" "bench/CMakeFiles/bench_table2.dir/bench_table2.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/voltcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/voltcache_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/voltcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/voltcache_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/voltcache_power.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/voltcache_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/voltcache_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/voltcache_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/voltcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/voltcache_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/voltcache_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/voltcache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
