# Empty compiler generated dependencies file for icache_bbr_link.
# This may be replaced when dependencies are built.
