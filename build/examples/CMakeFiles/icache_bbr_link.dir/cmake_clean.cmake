file(REMOVE_RECURSE
  "CMakeFiles/icache_bbr_link.dir/icache_bbr_link.cpp.o"
  "CMakeFiles/icache_bbr_link.dir/icache_bbr_link.cpp.o.d"
  "icache_bbr_link"
  "icache_bbr_link.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/icache_bbr_link.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
