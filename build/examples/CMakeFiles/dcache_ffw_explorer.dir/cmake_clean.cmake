file(REMOVE_RECURSE
  "CMakeFiles/dcache_ffw_explorer.dir/dcache_ffw_explorer.cpp.o"
  "CMakeFiles/dcache_ffw_explorer.dir/dcache_ffw_explorer.cpp.o.d"
  "dcache_ffw_explorer"
  "dcache_ffw_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcache_ffw_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
