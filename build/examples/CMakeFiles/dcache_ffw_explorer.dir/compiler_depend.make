# Empty compiler generated dependencies file for dcache_ffw_explorer.
# This may be replaced when dependencies are built.
