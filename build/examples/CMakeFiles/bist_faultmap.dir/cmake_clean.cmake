file(REMOVE_RECURSE
  "CMakeFiles/bist_faultmap.dir/bist_faultmap.cpp.o"
  "CMakeFiles/bist_faultmap.dir/bist_faultmap.cpp.o.d"
  "bist_faultmap"
  "bist_faultmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bist_faultmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
