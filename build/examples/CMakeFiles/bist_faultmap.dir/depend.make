# Empty dependencies file for bist_faultmap.
# This may be replaced when dependencies are built.
