# Empty dependencies file for dvfs_sweep.
# This may be replaced when dependencies are built.
