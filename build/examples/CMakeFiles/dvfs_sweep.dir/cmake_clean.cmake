file(REMOVE_RECURSE
  "CMakeFiles/dvfs_sweep.dir/dvfs_sweep.cpp.o"
  "CMakeFiles/dvfs_sweep.dir/dvfs_sweep.cpp.o.d"
  "dvfs_sweep"
  "dvfs_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvfs_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
