
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_assembler.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_assembler.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_assembler.cpp.o.d"
  "/root/repo/tests/test_bist.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_bist.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_bist.cpp.o.d"
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_compiler.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_compiler.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_compiler.cpp.o.d"
  "/root/repo/tests/test_cpu.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_cpu.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_cpu.cpp.o.d"
  "/root/repo/tests/test_fault_map_io.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_fault_map_io.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_fault_map_io.cpp.o.d"
  "/root/repo/tests/test_faults.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_faults.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_faults.cpp.o.d"
  "/root/repo/tests/test_headline.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_headline.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_headline.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_isa.cpp.o.d"
  "/root/repo/tests/test_linker.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_linker.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_linker.cpp.o.d"
  "/root/repo/tests/test_power.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_power.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_power.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_schemes.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_schemes.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_schemes.cpp.o.d"
  "/root/repo/tests/test_sram.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_sram.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_sram.cpp.o.d"
  "/root/repo/tests/test_synthetic.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_synthetic.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/voltcache_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/voltcache_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/voltcache_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/voltcache_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/voltcache_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/voltcache_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/voltcache_power.dir/DependInfo.cmake"
  "/root/repo/build/src/linker/CMakeFiles/voltcache_linker.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/voltcache_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/schemes/CMakeFiles/voltcache_schemes.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/voltcache_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/sram/CMakeFiles/voltcache_sram.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/voltcache_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/voltcache_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
