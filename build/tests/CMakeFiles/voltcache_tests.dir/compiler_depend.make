# Empty compiler generated dependencies file for voltcache_tests.
# This may be replaced when dependencies are built.
