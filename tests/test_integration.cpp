// Cross-module integration tests: the full System path (fault maps ->
// schemes -> linking -> timing simulation -> energy), plus the sweep
// driver's Fig. 10/11/12 shape checks on a reduced grid.
#include <gtest/gtest.h>

#include "core/sweep.h"
#include "core/system.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

struct Program {
    Module module;
    Module bbrModule;
};

Program makeProgram(const std::string& name, WorkloadScale scale = WorkloadScale::Tiny) {
    Program program{buildBenchmark(name, scale), buildBenchmark(name, scale)};
    applyBbrTransforms(program.bbrModule);
    return program;
}

TEST(System, DefectFreeBaselineRunsAtEveryVoltage) {
    const Program program = makeProgram("basicmath");
    for (const auto& point : DvfsTable::paperPoints()) {
        SystemConfig config;
        config.scheme = SchemeKind::DefectFree;
        config.op = point;
        const SystemResult result = simulateSystem(program.module, nullptr, config);
        EXPECT_FALSE(result.linkFailed);
        EXPECT_TRUE(result.run.halted);
        EXPECT_GT(result.epi, 0.0);
    }
}

TEST(System, SameCyclesDifferentEnergyAcrossVoltages) {
    // Defect-free at two voltages: identical microarchitectural behaviour
    // except DRAM cycles; energy differs by the scaling laws.
    const Program program = makeProgram("basicmath");
    SystemConfig config;
    config.scheme = SchemeKind::DefectFree;
    config.op = DvfsTable::at(560_mV);
    config.dramLatencyNs = 0.0; // remove the frequency-dependent DRAM term
    const SystemResult a = simulateSystem(program.module, nullptr, config);
    config.op = DvfsTable::at(400_mV);
    const SystemResult b = simulateSystem(program.module, nullptr, config);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_GT(a.epi, b.epi);
    EXPECT_GT(b.runtimeSeconds, a.runtimeSeconds);
}

class ChecksumAcrossSchemes
    : public ::testing::TestWithParam<std::tuple<std::string, SchemeKind>> {};

TEST_P(ChecksumAcrossSchemes, FunctionalCorrectnessPreserved) {
    const auto& [bench, scheme] = GetParam();
    const Program program = makeProgram(bench);

    SystemConfig reference;
    reference.scheme = SchemeKind::Conventional760;
    const SystemResult ref = simulateSystem(program.module, nullptr, reference);

    SystemConfig config;
    config.scheme = scheme;
    config.op = DvfsTable::at(400_mV); // worst case: P_fail = 1e-2
    config.faultMapSeed = 99;
    const SystemResult result = simulateSystem(program.module, &program.bbrModule, config);
    if (result.linkFailed) GTEST_SKIP() << "unplaceable chip (yield loss)";
    EXPECT_TRUE(result.run.halted);
    EXPECT_EQ(result.checksum, ref.checksum)
        << schemeName(scheme) << " corrupted " << bench;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ChecksumAcrossSchemes,
    ::testing::Combine(::testing::Values("basicmath", "qsort", "crc32", "mcf_r",
                                         "libquantum_r"),
                       ::testing::Values(SchemeKind::Robust8T, SchemeKind::SimpleWordDisable,
                                         SchemeKind::WilkersonPlus, SchemeKind::FbaPlus,
                                         SchemeKind::IdcPlus, SchemeKind::FfwBbr)),
    [](const auto& info) {
        std::string name = std::get<0>(info.param) + "_" +
                           std::string(schemeName(std::get<1>(info.param)));
        for (char& c : name) {
            if (c == '-' || c == '+') c = '_';
        }
        return name;
    });

TEST(System, FaultSchemesAreSlowerThanDefectFree) {
    const Program program = makeProgram("crc32");
    SystemConfig defectFree;
    defectFree.scheme = SchemeKind::DefectFree;
    defectFree.op = DvfsTable::at(440_mV);
    const SystemResult df = simulateSystem(program.module, nullptr, defectFree);
    for (const SchemeKind scheme :
         {SchemeKind::SimpleWordDisable, SchemeKind::WilkersonPlus, SchemeKind::FfwBbr}) {
        SystemConfig config = defectFree;
        config.scheme = scheme;
        config.faultMapSeed = 5;
        const SystemResult result =
            simulateSystem(program.module, &program.bbrModule, config);
        if (result.linkFailed) continue;
        EXPECT_GE(result.run.cycles, df.run.cycles) << schemeName(scheme);
    }
}

TEST(System, FfwBbrBeatsSimpleWdisOnL2TrafficAt400mV) {
    // Fig. 11's central claim, on one chip and one benchmark.
    const Program program = makeProgram("crc32");
    SystemConfig config;
    config.op = DvfsTable::at(400_mV);
    config.faultMapSeed = 11;
    config.scheme = SchemeKind::SimpleWordDisable;
    const SystemResult wdis = simulateSystem(program.module, &program.bbrModule, config);
    config.scheme = SchemeKind::FfwBbr;
    const SystemResult ffw = simulateSystem(program.module, &program.bbrModule, config);
    ASSERT_FALSE(ffw.linkFailed);
    EXPECT_LT(ffw.run.l2AccessesPerKilo(), wdis.run.l2AccessesPerKilo());
}

TEST(System, SameSeedSameChipAcrossSchemes) {
    // Paired sampling: the same seed must reproduce the same run exactly.
    const Program program = makeProgram("patricia");
    SystemConfig config;
    config.op = DvfsTable::at(440_mV);
    config.faultMapSeed = 123;
    config.scheme = SchemeKind::SimpleWordDisable;
    const SystemResult a = simulateSystem(program.module, &program.bbrModule, config);
    const SystemResult b = simulateSystem(program.module, &program.bbrModule, config);
    EXPECT_EQ(a.run.cycles, b.run.cycles);
    EXPECT_EQ(a.run.activity.l2Accesses, b.run.activity.l2Accesses);
    EXPECT_DOUBLE_EQ(a.epi, b.epi);
}

TEST(System, BbrLinkStatsReportGaps) {
    const Program program = makeProgram("dijkstra");
    SystemConfig config;
    config.scheme = SchemeKind::FfwBbr;
    config.op = DvfsTable::at(400_mV);
    config.faultMapSeed = 4;
    const SystemResult result = simulateSystem(program.module, &program.bbrModule, config);
    if (result.linkFailed) GTEST_SKIP() << "unplaceable chip";
    EXPECT_GT(result.linkStats.gapWords, 0u);
    EXPECT_GT(result.linkStats.blocksPlaced, 10u);
    EXPECT_LE(result.linkStats.largestBlockWords, kDefaultMaxBlockWords);
}

TEST(System, DramLatencyScalesWithFrequency) {
    EXPECT_EQ(dramLatencyCycles(60.0, Frequency::fromMegahertz(1607)), 96u);
    EXPECT_EQ(dramLatencyCycles(60.0, Frequency::fromMegahertz(475)), 29u);
}

// ---- Sweep driver ----

TEST(Sweep, SmallGridProducesAllCells) {
    SweepConfig config;
    config.benchmarks = {"crc32", "basicmath"};
    config.schemes = {SchemeKind::SimpleWordDisable, SchemeKind::FfwBbr};
    const auto low = DvfsTable::lowVoltagePoints();
    config.points = {low.front(), low.back()}; // 560mV and 400mV
    config.trials = 2;
    config.scale = WorkloadScale::Tiny;
    const SweepResult result = runSweep(config);
    EXPECT_EQ(result.cells.size(), 4u);
    const SweepCell& cell = result.cell(SchemeKind::FfwBbr, 400_mV);
    EXPECT_GT(cell.runs + cell.linkFailures, 0u);
    EXPECT_GE(cell.normRuntime.mean(), 1.0); // never faster than defect-free
    EXPECT_THROW((void)result.cell(SchemeKind::Robust8T, 400_mV), std::out_of_range);
}

TEST(Sweep, DeterministicAcrossRuns) {
    SweepConfig config;
    config.benchmarks = {"basicmath"};
    config.schemes = {SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(400_mV)};
    config.trials = 2;
    config.scale = WorkloadScale::Tiny;
    const SweepResult a = runSweep(config);
    const SweepResult b = runSweep(config);
    EXPECT_DOUBLE_EQ(a.cell(SchemeKind::FfwBbr, 400_mV).normEpi.mean(),
                     b.cell(SchemeKind::FfwBbr, 400_mV).normEpi.mean());
}

TEST(Sweep, Fig10ShapeLatencySchemesLoseAt560mV) {
    // At 560mV defects are rare: the +1-cycle schemes (8T) must be slower
    // than the 0-cycle schemes (simple-wdis, ffw+bbr).
    SweepConfig config;
    config.benchmarks = {"crc32", "basicmath", "qsort"};
    config.schemes = {SchemeKind::Robust8T, SchemeKind::SimpleWordDisable,
                      SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(560_mV)};
    config.trials = 2;
    config.scale = WorkloadScale::Tiny;
    const SweepResult result = runSweep(config);
    const double t8 = result.cell(SchemeKind::Robust8T, 560_mV).normRuntime.mean();
    const double wdis =
        result.cell(SchemeKind::SimpleWordDisable, 560_mV).normRuntime.mean();
    const double ffw = result.cell(SchemeKind::FfwBbr, 560_mV).normRuntime.mean();
    EXPECT_GT(t8, wdis);
    EXPECT_GT(t8, ffw);
}

TEST(Sweep, Fig11ShapeFfwBbrContainsL2TrafficAt400mV) {
    SweepConfig config;
    config.benchmarks = {"crc32", "basicmath", "adpcm"};
    config.schemes = {SchemeKind::SimpleWordDisable, SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(400_mV)};
    config.trials = 3;
    config.scale = WorkloadScale::Tiny;
    const SweepResult result = runSweep(config);
    EXPECT_LT(result.cell(SchemeKind::FfwBbr, 400_mV).l2PerKilo.mean(),
              result.cell(SchemeKind::SimpleWordDisable, 400_mV).l2PerKilo.mean());
}

} // namespace
} // namespace voltcache
