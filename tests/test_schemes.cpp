// Tests for the fault-tolerance schemes (paper Sections III-IV), including
// a reconstruction of the paper's Fig. 4 word-remap example.
#include <gtest/gtest.h>

#include "schemes/bbr.h"
#include "schemes/conventional.h"
#include "schemes/factory.h"
#include "schemes/fault_buffer.h"
#include "schemes/ffw.h"
#include "schemes/wilkerson.h"
#include "schemes/word_disable.h"

namespace voltcache {
namespace {

constexpr std::uint32_t kBlock = 32;

/// Address helper for the paper's L1 geometry: (tag, set, word) -> byte addr.
std::uint32_t addrOf(std::uint32_t tag, std::uint32_t set, std::uint32_t word) {
    return (tag * 256 + set) * kBlock + word * 4;
}

FaultMap cleanMap() { return FaultMap(1024, 8); }

// ---- Conventional ----

TEST(Conventional, ReadMissFillHit) {
    L2Cache l2;
    ConventionalDCache dcache(CacheOrganization{}, l2);
    const auto miss = dcache.read(addrOf(1, 0, 0));
    EXPECT_FALSE(miss.l1Hit);
    EXPECT_EQ(miss.l2Reads, 1u);
    EXPECT_EQ(miss.latencyCycles, kL1HitLatencyCycles + 10 + 100);
    const auto hit = dcache.read(addrOf(1, 0, 5));
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.latencyCycles, kL1HitLatencyCycles);
    EXPECT_EQ(dcache.stats().hits, 1u);
    EXPECT_EQ(dcache.stats().lineMisses, 1u);
}

TEST(Conventional, WriteThroughAlwaysReachesL2) {
    L2Cache l2;
    ConventionalDCache dcache(CacheOrganization{}, l2);
    (void)dcache.read(addrOf(1, 0, 0));
    const auto write = dcache.write(addrOf(1, 0, 1));
    EXPECT_TRUE(write.l1Hit);
    EXPECT_EQ(write.l2Writes, 1u);
    const auto writeMiss = dcache.write(addrOf(2, 0, 1));
    EXPECT_FALSE(writeMiss.l1Hit); // no-write-allocate
    EXPECT_EQ(writeMiss.l2Writes, 1u);
    EXPECT_EQ(l2.stats().writes, 2u);
}

TEST(Conventional, LatencyOverheadParameter) {
    L2Cache l2;
    ConventionalICache icache(CacheOrganization{}, l2, 1, "8T");
    (void)icache.fetch(addrOf(0, 0, 0));
    const auto hit = icache.fetch(addrOf(0, 0, 1));
    EXPECT_EQ(hit.latencyCycles, kL1HitLatencyCycles + 1);
}

// ---- Simple word disable ----

TEST(SimpleWdis, FaultyWordAlwaysMissesToL2) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 3); // frame 0 = (set 0, way 0)
    SimpleWordDisableDCache dcache(CacheOrganization{}, map, l2);
    (void)dcache.read(addrOf(0, 0, 0)); // fill way 0
    const auto first = dcache.read(addrOf(0, 0, 3));
    EXPECT_FALSE(first.l1Hit);
    EXPECT_EQ(first.l2Reads, 1u);
    const auto second = dcache.read(addrOf(0, 0, 3));
    EXPECT_FALSE(second.l1Hit) << "defective words can never be cached";
    EXPECT_EQ(dcache.stats().wordMisses, 2u);
}

TEST(SimpleWdis, CleanWordsOfFaultyLineStillHit) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 3);
    SimpleWordDisableDCache dcache(CacheOrganization{}, map, l2);
    (void)dcache.read(addrOf(0, 0, 0));
    EXPECT_TRUE(dcache.read(addrOf(0, 0, 4)).l1Hit);
    EXPECT_EQ(dcache.latencyOverhead(), 0u);
}

TEST(SimpleWdis, ICacheVariantMatchesSemantics) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 2);
    SimpleWordDisableICache icache(CacheOrganization{}, map, l2);
    (void)icache.fetch(addrOf(0, 0, 0));
    EXPECT_FALSE(icache.fetch(addrOf(0, 0, 2)).l1Hit);
    EXPECT_TRUE(icache.fetch(addrOf(0, 0, 1)).l1Hit);
}

// ---- FFW ----

TEST(Ffw, Figure4RemapExample) {
    // Reconstruct Fig. 4: a frame whose fault-free window holds logic words
    // 2..6 (stored pattern 01111100) and whose first two physical entries
    // are fault-free. Word offset 0x3 must remap to physical entry 0x1.
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 2); // frame 0: entries 2, 4, 6 defective -> k = 5
    map.setFaulty(0, 4);
    map.setFaulty(0, 6);
    FfwDCache dcache(CacheOrganization{}, map, l2);
    // Fill (set 0, way 0) centered on word 4 -> window = words 2..6.
    (void)dcache.read(addrOf(0, 0, 4));
    EXPECT_EQ(dcache.windowOf(0, 0).start, 2u);
    EXPECT_EQ(dcache.windowOf(0, 0).length, 5u);
    EXPECT_EQ(dcache.storedPattern(0, 0), 0b01111100u);
    EXPECT_EQ(dcache.physicalEntryFor(0, 0, 3), 1u); // the Fig. 4 answer
    // And the full remap: logic words 2,3,4,5,6 -> entries 0,1,3,5,7.
    const std::uint32_t expected[] = {0, 1, 3, 5, 7};
    for (std::uint32_t w = 2; w <= 6; ++w) {
        EXPECT_EQ(dcache.physicalEntryFor(0, 0, w), expected[w - 2]);
    }
}

TEST(Ffw, WordInsideWindowHitsAtBaseLatency) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 0);
    FfwDCache dcache(CacheOrganization{}, map, l2);
    (void)dcache.read(addrOf(0, 0, 4));
    const auto hit = dcache.read(addrOf(0, 0, 5));
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.latencyCycles, kL1HitLatencyCycles); // zero-overhead claim
    EXPECT_EQ(dcache.latencyOverhead(), 0u);
}

TEST(Ffw, WordMissRecentersWindow) {
    L2Cache l2;
    FaultMap map = cleanMap();
    // Frame 0: three faults -> k = 5.
    map.setFaulty(0, 1);
    map.setFaulty(0, 3);
    map.setFaulty(0, 5);
    FfwDCache dcache(CacheOrganization{}, map, l2);
    (void)dcache.read(addrOf(0, 0, 0)); // window centered on 0 -> [0, 5)
    EXPECT_EQ(dcache.windowOf(0, 0).start, 0u);
    // Word 7 misses (tag hit, outside window) and recenters: start
    // clamps to 8-k = 3 -> window [3, 8).
    const auto miss = dcache.read(addrOf(0, 0, 7));
    EXPECT_FALSE(miss.l1Hit);
    EXPECT_EQ(miss.l2Reads, 1u);
    EXPECT_EQ(dcache.stats().wordMisses, 1u);
    EXPECT_EQ(dcache.windowOf(0, 0).start, 3u);
    EXPECT_TRUE(dcache.read(addrOf(0, 0, 7)).l1Hit);
    EXPECT_TRUE(dcache.read(addrOf(0, 0, 4)).l1Hit);
    EXPECT_FALSE(dcache.read(addrOf(0, 0, 0)).l1Hit); // left behind
}

TEST(Ffw, MissingWordStandsInTheMiddle) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 0);
    map.setFaulty(0, 1);
    map.setFaulty(0, 2); // k = 5
    FfwDCache dcache(CacheOrganization{}, map, l2);
    (void)dcache.read(addrOf(0, 0, 0)); // centered on 0, clamped -> [0, 5)
    (void)dcache.read(addrOf(0, 0, 5)); // word miss on 5 (paper Fig. 5)
    // half = (5-1)/2 = 2 -> window [3, 8): word 5 in the middle.
    EXPECT_EQ(dcache.windowOf(0, 0).start, 3u);
}

TEST(Ffw, FirstKFillPolicy) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 6); // k = 7
    FfwConfig config;
    config.fillPolicy = FfwConfig::FillPolicy::FirstK;
    FfwDCache dcache(CacheOrganization{}, map, l2, config);
    (void)dcache.read(addrOf(0, 0, 7)); // fill; default pattern = words 0..6
    EXPECT_EQ(dcache.windowOf(0, 0).start, 0u);
    EXPECT_EQ(dcache.windowOf(0, 0).length, 7u);
    EXPECT_FALSE(dcache.read(addrOf(0, 0, 7)).l1Hit); // outside default
}

TEST(Ffw, StaticWindowAblationNeverMoves) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 7); // k = 7
    FfwConfig config;
    config.recenterOnWordMiss = false;
    config.fillPolicy = FfwConfig::FillPolicy::FirstK;
    FfwDCache dcache(CacheOrganization{}, map, l2, config);
    (void)dcache.read(addrOf(0, 0, 0));
    (void)dcache.read(addrOf(0, 0, 7));
    EXPECT_EQ(dcache.windowOf(0, 0).start, 0u);
    EXPECT_FALSE(dcache.read(addrOf(0, 0, 7)).l1Hit);
}

TEST(Ffw, WritesAreWriteThroughAndDoNotMoveWindow) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 0); // k = 7
    FfwDCache dcache(CacheOrganization{}, map, l2);
    (void)dcache.read(addrOf(0, 0, 1));
    const auto window = dcache.windowOf(0, 0);
    const auto write = dcache.write(addrOf(0, 0, 7));
    EXPECT_EQ(write.l2Writes, 1u);
    EXPECT_EQ(dcache.windowOf(0, 0).start, window.start);
    // Write inside the window is an L1 hit (and still writes through).
    const auto hitWrite = dcache.write(addrOf(0, 0, 2));
    EXPECT_TRUE(hitWrite.l1Hit);
    EXPECT_EQ(hitWrite.l2Writes, 1u);
}

TEST(Ffw, FullyDefectiveFramesAreNeverAllocated) {
    L2Cache l2;
    FaultMap map = cleanMap();
    for (std::uint32_t w = 0; w < 8; ++w) map.setFaulty(0, w); // frame 0 dead
    FfwDCache dcache(CacheOrganization{}, map, l2);
    // Fill four distinct tags in set 0: the dead way 0 must be skipped, so
    // tag 1 is still resident after three more fills.
    for (std::uint32_t tag = 1; tag <= 3; ++tag) (void)dcache.read(addrOf(tag, 0, 0));
    EXPECT_TRUE(dcache.read(addrOf(1, 0, 0)).l1Hit);
    EXPECT_TRUE(dcache.read(addrOf(2, 0, 0)).l1Hit);
    EXPECT_TRUE(dcache.read(addrOf(3, 0, 0)).l1Hit);
}

TEST(Ffw, FullyDefectiveSetServesFromL2) {
    CacheOrganization org;
    org.sizeBytes = 1024; // 8 lines, 2 sets, 4 ways — small for the test
    org.associativity = 4;
    L2Cache l2;
    FaultMap map(org.lines(), 8);
    const AddressMapper mapper(org);
    for (std::uint32_t way = 0; way < 4; ++way) {
        for (std::uint32_t w = 0; w < 8; ++w) map.setFaulty(mapper.physicalLine(0, way), w);
    }
    FfwDCache dcache(org, map, l2);
    const auto first = dcache.read(0);
    EXPECT_FALSE(first.l1Hit);
    const auto second = dcache.read(0);
    EXPECT_FALSE(second.l1Hit) << "set is disabled; every access goes to L2";
    EXPECT_EQ(second.l2Reads, 1u);
}

TEST(Ffw, CleanFrameBehavesConventionally) {
    L2Cache l2;
    FfwDCache dcache(CacheOrganization{}, cleanMap(), l2);
    (void)dcache.read(addrOf(0, 0, 0));
    for (std::uint32_t w = 0; w < 8; ++w) {
        EXPECT_TRUE(dcache.read(addrOf(0, 0, w)).l1Hit) << w;
    }
}

// ---- Wilkerson+ ----

TEST(Wilkerson, CapacityHalvesToTwoLogicalWays) {
    L2Cache l2;
    WilkersonDCache dcache(CacheOrganization{}, cleanMap(), l2);
    // Fill three tags in one set; only two logical ways exist, so the
    // first is evicted.
    (void)dcache.read(addrOf(1, 0, 0));
    (void)dcache.read(addrOf(2, 0, 0));
    (void)dcache.read(addrOf(3, 0, 0));
    EXPECT_FALSE(dcache.read(addrOf(1, 0, 0)).l1Hit);
}

TEST(Wilkerson, RepairableWordHits) {
    L2Cache l2;
    FaultMap map = cleanMap();
    // Logical way 0 of set 0 pairs frames (set0,way0)=line 0 and
    // (set0,way1)=line 256. Fault word 3 in only one member: repairable.
    map.setFaulty(0, 3);
    WilkersonDCache dcache(CacheOrganization{}, map, l2);
    (void)dcache.read(addrOf(0, 0, 3));
    const auto hit = dcache.read(addrOf(0, 0, 3));
    EXPECT_TRUE(hit.l1Hit);
    EXPECT_EQ(hit.latencyCycles, kL1HitLatencyCycles + 1); // +1 cycle combining mux
}

TEST(Wilkerson, UnrepairableWordFallsBackToWordDisable) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 3);   // pair member A
    map.setFaulty(256, 3); // pair member B, same position
    WilkersonDCache dcache(CacheOrganization{}, map, l2);
    EXPECT_EQ(dcache.pairing().unrepairableCount(), 1u);
    (void)dcache.read(addrOf(0, 0, 0));
    EXPECT_FALSE(dcache.read(addrOf(0, 0, 3)).l1Hit);
    EXPECT_FALSE(dcache.read(addrOf(0, 0, 3)).l1Hit);
    EXPECT_TRUE(dcache.read(addrOf(0, 0, 4)).l1Hit);
}

TEST(Wilkerson, UnrepairableCountGrowsWithDefectDensity) {
    Rng rng(3);
    const FaultMapGenerator generator;
    using voltcache::literals::operator""_mV;
    const FaultMap at480 = generator.generate(rng, 480_mV, 1024, 8);
    const FaultMap at400 = generator.generate(rng, 400_mV, 1024, 8);
    const WilkersonPairing pairing480(CacheOrganization{}, at480);
    const WilkersonPairing pairing400(CacheOrganization{}, at400);
    EXPECT_GT(pairing400.unrepairableCount(), pairing480.unrepairableCount());
    // This is why plain word-disable cannot hold 99.9% yield below 480mV.
    EXPECT_GT(pairing400.unrepairableCount(), 0u);
}

// ---- FBA / IDC ----

TEST(FaultBuffer, FaultyWordInstalledThenServedFromBuffer) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 3);
    FaultBufferDCache dcache(CacheOrganization{}, map, l2, fbaConfig(64));
    const auto fill = dcache.read(addrOf(0, 0, 3)); // line fill + buffer install
    EXPECT_FALSE(fill.l1Hit);
    const auto buffered = dcache.read(addrOf(0, 0, 3));
    EXPECT_TRUE(buffered.l1Hit);
    EXPECT_TRUE(buffered.auxHit);
    EXPECT_EQ(buffered.l2Reads, 0u);
    EXPECT_EQ(buffered.latencyCycles, kL1HitLatencyCycles + 1);
}

TEST(FaultBuffer, EveryAccessPaysTheExtraCycle) {
    L2Cache l2;
    FaultMap map = cleanMap();
    FaultBufferDCache dcache(CacheOrganization{}, map, l2, fbaConfig(64));
    (void)dcache.read(addrOf(0, 0, 0));
    EXPECT_EQ(dcache.read(addrOf(0, 0, 1)).latencyCycles, kL1HitLatencyCycles + 1);
}

TEST(FaultBuffer, CapacityEvictsLru) {
    L2Cache l2;
    FaultMap map = cleanMap();
    // Fault word 0 of many consecutive sets' way-0 frames.
    for (std::uint32_t set = 0; set < 8; ++set) map.setFaulty(set, 0);
    FaultBufferDCache dcache(CacheOrganization{}, map, l2, fbaConfig(4));
    for (std::uint32_t set = 0; set < 8; ++set) (void)dcache.read(addrOf(0, set, 0));
    // First installed word fell out of the 4-entry buffer.
    EXPECT_FALSE(dcache.read(addrOf(0, 0, 0)).l1Hit);
    // A recently installed one is still buffered.
    EXPECT_TRUE(dcache.read(addrOf(0, 7, 0)).l1Hit);
}

TEST(FaultBuffer, IdcIsSetAssociative) {
    const auto config = idcConfig(64, 8);
    EXPECT_EQ(config.entries, 64u);
    EXPECT_EQ(config.ways, 8u);
    WordBuffer buffer(config.entries, config.ways);
    // 9 conflicting words in one 8-way set: the first is evicted.
    for (std::uint32_t i = 0; i <= 8; ++i) buffer.insert(i * 8); // sets = 8
    EXPECT_FALSE(buffer.probe(0));
    EXPECT_TRUE(buffer.probe(8 * 8));
}

TEST(FaultBuffer, ICacheVariant) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 5);
    FaultBufferICache icache(CacheOrganization{}, map, l2, idcConfig(64, 8));
    (void)icache.fetch(addrOf(0, 0, 5));
    EXPECT_TRUE(icache.fetch(addrOf(0, 0, 5)).l1Hit);
    EXPECT_EQ(icache.latencyOverhead(), 1u);
}

// ---- BBR ----

TEST(Bbr, DirectMappedUsesTagLsbsAsWay) {
    L2Cache l2;
    BbrICache icache(CacheOrganization{}, cleanMap(), l2, BbrICache::Mode::DirectMapped);
    // Two addresses with the same set but different tag LSBs coexist.
    (void)icache.fetch(addrOf(0, 0, 0));
    (void)icache.fetch(addrOf(1, 0, 0));
    EXPECT_TRUE(icache.fetch(addrOf(0, 0, 0)).l1Hit);
    EXPECT_TRUE(icache.fetch(addrOf(1, 0, 0)).l1Hit);
    // Same tag LSBs (tag 4 ≡ 0 mod 4): conflict evicts.
    (void)icache.fetch(addrOf(4, 0, 0));
    EXPECT_FALSE(icache.fetch(addrOf(0, 0, 0)).l1Hit);
}

TEST(Bbr, FetchOfDefectiveWordThrows) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 2); // frame 0 = DM slot of (set 0, way 0)
    BbrICache icache(CacheOrganization{}, map, l2);
    EXPECT_THROW((void)icache.fetch(addrOf(0, 0, 2)), PlacementViolation);
    EXPECT_NO_THROW((void)icache.fetch(addrOf(0, 0, 3)));
}

TEST(Bbr, EnforcementCanBeDisabled) {
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 2);
    BbrICache icache(CacheOrganization{}, map, l2, BbrICache::Mode::DirectMapped, false);
    EXPECT_NO_THROW((void)icache.fetch(addrOf(0, 0, 2)));
}

TEST(Bbr, SetAssociativeModeIsConventional) {
    L2Cache l2;
    BbrICache icache(CacheOrganization{}, cleanMap(), l2, BbrICache::Mode::SetAssociative);
    for (std::uint32_t tag = 0; tag < 4; ++tag) (void)icache.fetch(addrOf(tag, 0, 0));
    for (std::uint32_t tag = 0; tag < 4; ++tag) {
        EXPECT_TRUE(icache.fetch(addrOf(tag, 0, 0)).l1Hit) << tag;
    }
    EXPECT_EQ(icache.latencyOverhead(), 0u);
}

TEST(Bbr, ModeSwitchInvalidates) {
    L2Cache l2;
    BbrICache icache(CacheOrganization{}, cleanMap(), l2, BbrICache::Mode::SetAssociative);
    (void)icache.fetch(addrOf(0, 0, 0));
    icache.switchMode(BbrICache::Mode::DirectMapped);
    EXPECT_FALSE(icache.fetch(addrOf(0, 0, 0)).l1Hit);
}

// ---- Factory ----

TEST(Factory, BuildsEveryKind) {
    L2Cache l2;
    const FaultMap map = cleanMap();
    for (const SchemeKind kind :
         {SchemeKind::DefectFree, SchemeKind::Conventional760, SchemeKind::Robust8T,
          SchemeKind::SimpleWordDisable, SchemeKind::WilkersonPlus, SchemeKind::FbaPlus,
          SchemeKind::IdcPlus, SchemeKind::FfwBbr}) {
        const SchemePair pair = makeSchemes(kind, CacheOrganization{}, map, map, l2);
        ASSERT_NE(pair.dcache, nullptr) << schemeName(kind);
        ASSERT_NE(pair.icache, nullptr) << schemeName(kind);
        EXPECT_GE(pair.l1StaticFactor, 1.0) << schemeName(kind);
        EXPECT_EQ(pair.needsBbrLinking, kind == SchemeKind::FfwBbr) << schemeName(kind);
    }
}

TEST(Factory, LatencyOverheadsMatchTableIII) {
    L2Cache l2;
    const FaultMap map = cleanMap();
    const CacheOrganization org;
    EXPECT_EQ(makeSchemes(SchemeKind::Robust8T, org, map, map, l2).dcache->latencyOverhead(),
              1u);
    EXPECT_EQ(
        makeSchemes(SchemeKind::SimpleWordDisable, org, map, map, l2).dcache->latencyOverhead(),
        0u);
    EXPECT_EQ(makeSchemes(SchemeKind::FfwBbr, org, map, map, l2).dcache->latencyOverhead(),
              0u);
    EXPECT_EQ(makeSchemes(SchemeKind::FbaPlus, org, map, map, l2).dcache->latencyOverhead(),
              1u);
    EXPECT_EQ(
        makeSchemes(SchemeKind::WilkersonPlus, org, map, map, l2).icache->latencyOverhead(),
        1u);
}


// ---- FBA/IDC entry lifetime ----

TEST(FaultBuffer, EntriesDieWithTheirLine) {
    // Buffer entries are substitute storage for resident lines: when the
    // line is evicted, the entry must go with it (no victim-cache effect).
    L2Cache l2;
    FaultMap map = cleanMap();
    map.setFaulty(0, 3); // (set 0, way 0) word 3
    FaultBufferDCache dcache(CacheOrganization{}, map, l2, fbaConfig(64));
    (void)dcache.read(addrOf(0, 0, 3)); // fill way 0, install word
    EXPECT_TRUE(dcache.read(addrOf(0, 0, 3)).l1Hit);
    // Evict tag 0 from way 0: fill four more tags into set 0 and touch them
    // so LRU pushes tag 0 out.
    for (std::uint32_t tag = 1; tag <= 4; ++tag) (void)dcache.read(addrOf(tag, 0, 0));
    // Tag 0 is gone; re-filling it must re-miss the faulty word (the buffer
    // entry was invalidated on eviction).
    const auto refill = dcache.read(addrOf(0, 0, 3));
    EXPECT_FALSE(refill.l1Hit);
    EXPECT_EQ(refill.l2Reads, 1u);
}

TEST(FaultBuffer, WordBufferInvalidateIsIdempotent) {
    WordBuffer buffer(8, 8);
    buffer.insert(42);
    EXPECT_TRUE(buffer.probe(42));
    buffer.invalidate(42);
    EXPECT_FALSE(buffer.probe(42));
    buffer.invalidate(42); // no-op
    EXPECT_FALSE(buffer.probe(42));
}

} // namespace
} // namespace voltcache
