// Tests for the parametric pointer-chase workload used by the footprint
// study (bench_footprint).
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "cpu/simulator.h"
#include "linker/linker.h"
#include "schemes/conventional.h"
#include "workload/locality.h"
#include "workload/synthetic.h"

namespace voltcache {
namespace {

RunStats runChase(const PointerChaseParams& params, std::int32_t* checksum = nullptr,
                  LocalityProfiler* profiler = nullptr) {
    const Module module = buildPointerChase(params);
    const LinkOutput linked = link(module);
    L2Cache l2;
    CacheOrganization org;
    ConventionalICache icache(org, l2);
    ConventionalDCache dcache(org, l2);
    Simulator sim(linked.image, module.data, icache, dcache);
    if (profiler != nullptr) sim.setObserver(profiler);
    const RunStats stats = sim.run();
    if (checksum != nullptr) *checksum = sim.reg(1);
    return stats;
}

TEST(PointerChase, RunsToCompletionDeterministically) {
    PointerChaseParams params;
    params.poolRecords = 512;
    params.cycleRecords = 128;
    params.steps = 2000;
    std::int32_t a = 0;
    std::int32_t b = 0;
    EXPECT_TRUE(runChase(params, &a).halted);
    EXPECT_TRUE(runChase(params, &b).halted);
    EXPECT_EQ(a, b);
}

TEST(PointerChase, StepsScaleInstructions) {
    PointerChaseParams small;
    small.poolRecords = 512;
    small.cycleRecords = 128;
    small.steps = 1000;
    PointerChaseParams big = small;
    big.steps = 4000;
    EXPECT_GT(runChase(big).instructions, runChase(small).instructions * 2);
}

TEST(PointerChase, WordsPerVisitControlsSpatialLocality) {
    PointerChaseParams narrow;
    narrow.poolRecords = 1024;
    narrow.cycleRecords = 256;
    narrow.steps = 4000;
    narrow.wordsPerVisit = 2;
    PointerChaseParams wide = narrow;
    wide.wordsPerVisit = 6;
    LocalityProfiler profilerNarrow;
    LocalityProfiler profilerWide;
    (void)runChase(narrow, nullptr, &profilerNarrow);
    (void)runChase(wide, nullptr, &profilerWide);
    profilerNarrow.finalize();
    profilerWide.finalize();
    EXPECT_LT(profilerNarrow.meanSpatialLocality() + 0.15,
              profilerWide.meanSpatialLocality());
}

TEST(PointerChase, FootprintControlsMissRate) {
    // A cycle within the 32KB L1 hits after warmup; a cycle far beyond it
    // thrashes and keeps missing.
    PointerChaseParams fits;
    fits.poolRecords = 4096;
    fits.cycleRecords = 256; // 8KB live
    fits.steps = 20000;
    PointerChaseParams thrashes = fits;
    thrashes.cycleRecords = 4096; // 128KB live
    const RunStats a = runChase(fits);
    const RunStats b = runChase(thrashes);
    EXPECT_LT(a.l2AccessesPerKilo() * 3, b.l2AccessesPerKilo());
}

TEST(PointerChase, ParameterValidation) {
    PointerChaseParams bad;
    bad.cycleRecords = bad.poolRecords + 1;
    EXPECT_THROW((void)buildPointerChase(bad), ContractViolation);
    PointerChaseParams badWords;
    badWords.wordsPerVisit = 9;
    EXPECT_THROW((void)buildPointerChase(badWords), ContractViolation);
}

} // namespace
} // namespace voltcache
