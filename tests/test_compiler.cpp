// Tests for the BBR code transformations (paper Section IV-B2, Fig. 8) and
// the CFG helpers. The strongest check is semantic: a transformed program
// must compute the same result as the original.
#include <gtest/gtest.h>

#include "compiler/cfg.h"
#include "compiler/passes.h"
#include "cpu/simulator.h"
#include "isa/builder.h"
#include "linker/linker.h"
#include "schemes/conventional.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using namespace regs;

/// Link and functionally execute a module on defect-free caches; returns r1.
std::int32_t execute(const Module& module) {
    const LinkOutput linked = link(module);
    L2Cache l2;
    CacheOrganization org;
    ConventionalICache icache(org, l2);
    ConventionalDCache dcache(org, l2);
    Simulator sim(linked.image, module.data, icache, dcache);
    const RunStats stats = sim.run();
    EXPECT_TRUE(stats.halted);
    return sim.reg(1);
}

/// A small program with fall-throughs, a large block, and shared literals.
Module sampleModule() {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto big = f.newBlock("big");
    auto take = f.newBlock("take");
    auto join = f.newBlock("join");
    f.li(r1, 0);
    f.li(r2, 10);
    f.blt(r2, r0, take); // never taken; falls through to 'big'
    f.at(big);
    for (int i = 0; i < 30; ++i) f.addi(r1, r1, 1); // oversized block
    f.ldlConst(r3, 123456789);
    f.add(r1, r1, r3); // falls through to 'take'
    f.at(take);
    f.ldlConst(r3, 100000);
    f.add(r1, r1, r3);
    f.jmp(join);
    f.at(join);
    f.halt();
    return mb.take();
}

TEST(InsertJumps, SealsFallthroughBlocks) {
    Module module = sampleModule();
    const TransformStats stats = insertFallthroughJumps(module);
    EXPECT_GE(stats.jumpsInserted, 2u);
    for (const auto& fn : module.functions) {
        for (std::size_t b = 0; b + 1 < fn.blocks.size(); ++b) {
            EXPECT_FALSE(fn.blocks[b].hasFallthrough())
                << fn.name << ":" << fn.blocks[b].label;
        }
    }
    module.validate();
}

TEST(InsertJumps, InsertedJumpTargetsNextBlock) {
    Module module = sampleModule();
    insertFallthroughJumps(module);
    const auto& fn = module.functions[0];
    const auto& entry = fn.blocks[0];
    const auto& last = entry.insts.back();
    EXPECT_EQ(last.op, Opcode::Jal);
    EXPECT_EQ(last.rd, kZeroRegister);
    const auto* reloc = entry.relocFor(static_cast<std::uint32_t>(entry.insts.size() - 1));
    ASSERT_NE(reloc, nullptr);
    EXPECT_EQ(reloc->targetBlock, 1u);
}

TEST(InsertJumps, IdempotentOnSealedModule) {
    Module module = sampleModule();
    insertFallthroughJumps(module);
    const TransformStats again = insertFallthroughJumps(module);
    EXPECT_EQ(again.jumpsInserted, 0u);
}

TEST(InsertJumps, PreservesSemantics) {
    Module original = sampleModule();
    Module transformed = sampleModule();
    insertFallthroughJumps(transformed);
    EXPECT_EQ(execute(original), execute(transformed));
}

TEST(MoveLiterals, PoolsBecomeBlockLocal) {
    Module module = sampleModule();
    const TransformStats stats = moveLiteralPools(module);
    EXPECT_GE(stats.literalsMoved, 2u);
    for (const auto& fn : module.functions) {
        EXPECT_TRUE(fn.sharedLiteralPool.empty());
        for (const auto& block : fn.blocks) {
            for (const auto& reloc : block.relocs) {
                EXPECT_NE(reloc.kind, RelocKind::SharedLiteral);
            }
        }
    }
    module.validate();
}

TEST(MoveLiterals, PreservesSemantics) {
    Module original = sampleModule();
    Module transformed = sampleModule();
    moveLiteralPools(transformed);
    insertFallthroughJumps(transformed); // literal pools forbid fall-through past them
    EXPECT_EQ(execute(original), execute(transformed));
}

TEST(MoveLiterals, DeduplicatesWithinBlock) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.ldlConst(r1, 5555555).ldlConst(r2, 5555555).halt();
    Module module = mb.take();
    moveLiteralPools(module);
    EXPECT_EQ(module.functions[0].blocks[0].literalPool.size(), 1u);
}

TEST(BreakBlocks, NoBlockExceedsLimit) {
    Module module = sampleModule();
    moveLiteralPools(module);
    insertFallthroughJumps(module);
    const TransformStats stats = breakLargeBlocks(module, 12);
    EXPECT_GE(stats.blocksBroken, 1u);
    for (const auto& fn : module.functions) {
        for (const auto& block : fn.blocks) {
            EXPECT_LE(block.sizeWords(), 12u) << fn.name << ":" << block.label;
        }
    }
    module.validate();
}

TEST(BreakBlocks, PiecesChainWithJumps) {
    Module module = sampleModule();
    moveLiteralPools(module);
    insertFallthroughJumps(module);
    breakLargeBlocks(module, 12);
    const auto& fn = module.functions[0];
    // Find a piece block: label contains "_p".
    bool foundPiece = false;
    for (const auto& block : fn.blocks) {
        if (block.label.find("_p") != std::string::npos) foundPiece = true;
    }
    EXPECT_TRUE(foundPiece);
    for (std::size_t b = 0; b + 1 < fn.blocks.size(); ++b) {
        EXPECT_FALSE(fn.blocks[b].hasFallthrough());
    }
}

TEST(BreakBlocks, PreservesSemantics) {
    Module original = sampleModule();
    Module transformed = sampleModule();
    moveLiteralPools(transformed);
    insertFallthroughJumps(transformed);
    breakLargeBlocks(transformed, 12);
    EXPECT_EQ(execute(original), execute(transformed));
}

TEST(BreakBlocks, RemapsBranchTargetsAcrossShift) {
    // A branch over a big block must still reach the same code after the
    // big block splits and shifts every later index.
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto big = f.newBlock("big");
    auto dest = f.newBlock("dest");
    f.li(r1, 1);
    f.bne(r1, r0, dest); // branch over 'big'
    f.at(big);
    for (int i = 0; i < 40; ++i) f.addi(r1, r1, 100);
    f.jmp(dest);
    f.at(dest);
    f.addi(r1, r1, 7);
    f.halt();
    Module module = mb.take();
    Module transformed = module;
    insertFallthroughJumps(transformed);
    breakLargeBlocks(transformed, 8);
    insertFallthroughJumps(module);
    EXPECT_EQ(execute(module), execute(transformed));
    EXPECT_EQ(execute(transformed), 8); // 1 + 7, big block skipped
}

TEST(ApplyBbr, FullPipelineOnAllBenchmarks) {
    for (const auto& info : benchmarkList()) {
        Module module = buildBenchmark(info.name, WorkloadScale::Tiny);
        const TransformStats stats = applyBbrTransforms(module);
        (void)stats;
        for (const auto& fn : module.functions) {
            EXPECT_TRUE(fn.sharedLiteralPool.empty()) << fn.name;
            for (std::size_t b = 0; b < fn.blocks.size(); ++b) {
                EXPECT_LE(fn.blocks[b].sizeWords(), kDefaultMaxBlockWords)
                    << info.name << " " << fn.name << ":" << fn.blocks[b].label;
                EXPECT_FALSE(fn.blocks[b].hasFallthrough())
                    << info.name << " " << fn.name << ":" << fn.blocks[b].label;
            }
        }
    }
}

TEST(ApplyBbr, SemanticsPreservedOnAllBenchmarks) {
    for (const auto& info : benchmarkList()) {
        Module original = buildBenchmark(info.name, WorkloadScale::Tiny);
        Module transformed = buildBenchmark(info.name, WorkloadScale::Tiny);
        applyBbrTransforms(transformed);
        EXPECT_EQ(execute(original), execute(transformed)) << info.name;
    }
}

TEST(Cfg, SuccessorsOfConditionalBlock) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto target = f.newBlock("target");
    f.beq(r1, r2, target);
    f.at(target).halt();
    const Module module = mb.take();
    const auto successors = successorsOf(module.functions[0], 0);
    ASSERT_EQ(successors.targets.size(), 1u);
    EXPECT_EQ(successors.targets[0], 1u);
    EXPECT_TRUE(successors.fallsThrough);
    const auto terminal = successorsOf(module.functions[0], 1);
    EXPECT_TRUE(terminal.halts);
    EXPECT_FALSE(terminal.fallsThrough);
}

TEST(Cfg, CallsAreNotSuccessors) {
    ModuleBuilder mb;
    auto callee = mb.function("callee");
    callee.ret();
    auto f = mb.function("main");
    f.call("callee").halt();
    mb.setEntry("main");
    const Module module = mb.take();
    const auto successors = successorsOf(*module.findFunction("main"), 0);
    EXPECT_TRUE(successors.targets.empty());
    EXPECT_TRUE(successors.halts);
}

TEST(Cfg, BlockSizesSkipEmptyBlocks) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.newBlock("never_filled");
    f.addi(r1, r0, 1);
    f.halt();
    const Module module = mb.take();
    const auto sizes = blockSizesWords(module);
    ASSERT_EQ(sizes.size(), 1u);
    EXPECT_EQ(sizes[0], 2u);
}

} // namespace
} // namespace voltcache
