// Property-based suites: FFW checked against an independent oracle under
// random access streams, BBR placement + execution under random fault maps,
// and statistical invariants of the Monte Carlo machinery.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "core/system.h"
#include "schemes/ffw.h"
#include "schemes/wilkerson.h"
#include "schemes/word_disable.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

// ---- FFW vs. an independent oracle ----

/// Reference model of the FFW semantics, written independently of the
/// implementation: per (set, way) it tracks tag + window and replays the
/// paper's rules (write-through no-allocate; recenter on read word miss;
/// centered fill; LRU).
class FfwOracle {
public:
    FfwOracle(const CacheOrganization& org, const FaultMap& map)
        : org_(org), map_(&map), state_(org.lines()) {}

    struct Line {
        bool valid = false;
        std::uint32_t tag = 0;
        std::uint32_t start = 0;
        std::uint32_t length = 0;
        std::uint64_t lru = 0;
    };

    bool read(std::uint32_t addr) {
        const std::uint32_t set = (addr / 32) % org_.sets();
        const std::uint32_t tag = (addr / 32) / org_.sets();
        const std::uint32_t word = (addr % 32) / 4;
        if (Line* line = find(set, tag)) {
            line->lru = ++clock_;
            if (word >= line->start && word < line->start + line->length) return true;
            recenter(*line, set, word);
            return false;
        }
        fill(set, tag, word);
        return false;
    }

    bool write(std::uint32_t addr) {
        const std::uint32_t set = (addr / 32) % org_.sets();
        const std::uint32_t tag = (addr / 32) / org_.sets();
        const std::uint32_t word = (addr % 32) / 4;
        if (Line* line = find(set, tag)) {
            line->lru = ++clock_;
            return word >= line->start && word < line->start + line->length;
        }
        return false;
    }

private:
    Line* find(std::uint32_t set, std::uint32_t tag) {
        for (std::uint32_t way = 0; way < org_.associativity; ++way) {
            Line& line = state_[way * org_.sets() + set];
            if (line.valid && line.tag == tag) return &line;
        }
        return nullptr;
    }

    std::uint32_t freeCount(std::uint32_t set, std::uint32_t way) const {
        return map_->faultFreeCount(way * org_.sets() + set);
    }

    void recenter(Line& line, std::uint32_t set, std::uint32_t word) {
        std::uint32_t way = 0;
        for (; way < org_.associativity; ++way) {
            if (&state_[way * org_.sets() + set] == &line) break;
        }
        const std::uint32_t k = freeCount(set, way);
        const std::uint32_t half = (k - 1) / 2;
        std::uint32_t start = word > half ? word - half : 0;
        start = std::min(start, 8 - k);
        line.start = start;
        line.length = k;
    }

    void fill(std::uint32_t set, std::uint32_t tag, std::uint32_t word) {
        std::optional<std::uint32_t> victim;
        std::uint64_t oldest = ~std::uint64_t{0};
        for (std::uint32_t way = 0; way < org_.associativity; ++way) {
            if (freeCount(set, way) == 0) continue; // dead frame
            Line& line = state_[way * org_.sets() + set];
            if (!line.valid) {
                victim = way;
                break;
            }
            if (line.lru < oldest) {
                oldest = line.lru;
                victim = way;
            }
        }
        if (!victim) return; // whole set dead
        Line& line = state_[*victim * org_.sets() + set];
        line.valid = true;
        line.tag = tag;
        line.lru = ++clock_;
        recenter(line, set, word);
    }

    CacheOrganization org_;
    const FaultMap* map_;
    std::vector<Line> state_;
    std::uint64_t clock_ = 0;
};

class FfwOracleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FfwOracleProperty, ImplementationMatchesOracle) {
    Rng rng(GetParam());
    const FaultMapGenerator generator;
    const CacheOrganization org;
    const FaultMap map = generator.generate(rng, 400_mV, org.lines(), org.wordsPerBlock());

    L2Cache l2;
    FfwDCache dcache(org, map, l2);
    FfwOracle oracle(org, map);

    // A mix of sequential runs and random jumps over a 256KB footprint.
    std::uint32_t addr = 0;
    for (int i = 0; i < 60000; ++i) {
        if (rng.nextBernoulli(0.2)) {
            addr = static_cast<std::uint32_t>(rng.nextBelow(256 * 1024)) & ~3u;
        } else {
            addr = (addr + 4) % (256 * 1024);
        }
        if (rng.nextBernoulli(0.25)) {
            EXPECT_EQ(dcache.write(addr).l1Hit, oracle.write(addr)) << "write @" << addr;
        } else {
            EXPECT_EQ(dcache.read(addr).l1Hit, oracle.read(addr)) << "read @" << addr;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FfwOracleProperty, ::testing::Values(11, 22, 33, 44));

// ---- FFW dominance over simple word disable ----

class FfwDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FfwDominance, FfwNeverTrailsOnSequentialScans) {
    // On forward scans FFW's moving window must capture at least as many
    // hits as static word disable, for any fault map.
    Rng rng(GetParam());
    const FaultMapGenerator generator;
    const CacheOrganization org;
    const FaultMap map = generator.generate(rng, 400_mV, org.lines(), org.wordsPerBlock());
    L2Cache l2a;
    L2Cache l2b;
    FfwDCache ffw(org, map, l2a);
    SimpleWordDisableDCache wdis(org, map, l2b);
    for (std::uint32_t addr = 0; addr < 64 * 1024; addr += 4) {
        (void)ffw.read(addr);
        (void)wdis.read(addr);
    }
    EXPECT_GE(ffw.stats().hits, wdis.stats().hits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FfwDominance, ::testing::Values(1, 2, 3));

// ---- BBR end-to-end under random maps ----

class BbrEndToEnd : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BbrEndToEnd, ExecutesCorrectlyOnRandomChips) {
    // Full-stack property: for random chips at 400mV, FFW+BBR either fails
    // to link (yield loss) or computes exactly the reference checksum
    // while never fetching a defective I-cache word (the BbrICache asserts
    // that internally on every fetch).
    const Module module = buildBenchmark("adpcm", WorkloadScale::Tiny);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);

    SystemConfig reference;
    reference.scheme = SchemeKind::Conventional760;
    const SystemResult ref = simulateSystem(module, nullptr, reference);

    int linked = 0;
    for (std::uint64_t seed = GetParam() * 100; seed < GetParam() * 100 + 5; ++seed) {
        SystemConfig config;
        config.scheme = SchemeKind::FfwBbr;
        config.op = DvfsTable::at(400_mV);
        config.faultMapSeed = seed;
        const SystemResult result = simulateSystem(module, &bbrModule, config);
        if (result.linkFailed) continue;
        ++linked;
        EXPECT_EQ(result.checksum, ref.checksum) << "seed " << seed;
    }
    EXPECT_GT(linked, 0) << "every chip unplaceable — placement is broken";
}

INSTANTIATE_TEST_SUITE_P(SeedBlocks, BbrEndToEnd, ::testing::Values(1, 2, 3));

// ---- Monte Carlo machinery ----

TEST(MonteCarlo, EffectiveCapacityMatchesExpectation) {
    // Mean effective capacity at 400mV ~ (1-p_word): the Fig. 6a center.
    const FailureModel model;
    const double pWord = model.pFailStructure(400_mV, 32);
    const FaultMapGenerator generator(model);
    Rng rng(55);
    RunningStats capacity;
    for (int i = 0; i < 50; ++i) {
        const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
        capacity.add(map.effectiveCapacityFraction());
    }
    EXPECT_NEAR(capacity.mean(), 1.0 - pWord, 0.01);
}

TEST(MonteCarlo, ChunkSizesAreGeometric) {
    // Fault-free chunk lengths follow a geometric law with parameter
    // p_word; check the mean at 400mV (Fig. 6b's chunk-size histogram).
    const FailureModel model;
    const double pWord = model.pFailStructure(400_mV, 32);
    const FaultMapGenerator generator(model);
    Rng rng(56);
    RunningStats chunkLength;
    for (int i = 0; i < 20; ++i) {
        const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
        for (const auto& chunk : map.faultFreeChunks()) chunkLength.add(chunk.length);
    }
    // Maximal fault-free runs, conditioned on being non-empty, are
    // geometric with mean 1/p_word.
    EXPECT_NEAR(chunkLength.mean(), 1.0 / pWord, 1.0 / pWord * 0.1);
}

TEST(MonteCarlo, WilkersonYieldCollapsesBelow480) {
    // Fraction of chips with zero unrepairable words: high at 560mV, ~zero
    // at 440mV — the reason the paper supplements Wilkerson below 480mV.
    const FaultMapGenerator generator;
    const CacheOrganization org;
    auto cleanChipFraction = [&](Voltage v) {
        Rng rng(777);
        int clean = 0;
        for (int i = 0; i < 40; ++i) {
            const FaultMap map = generator.generate(rng, v, 1024, 8);
            if (WilkersonPairing(org, map).unrepairableCount() == 0) ++clean;
        }
        return clean / 40.0;
    };
    EXPECT_GT(cleanChipFraction(560_mV), 0.9);
    EXPECT_LT(cleanChipFraction(440_mV), 0.1);
}

} // namespace
} // namespace voltcache
