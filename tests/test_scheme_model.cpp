// Brute-force validation of the closed-form FFW/BBR models
// (analysis/scheme_model.h) and the statistical cross-check layer
// (analysis/crosscheck.h): on caches small enough to enumerate every fault
// pattern, the analytic distributions must match the probability-weighted
// enumeration exactly (up to floating-point rounding), with the per-map
// FaultMap queries themselves serving as the ground-truth oracle.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <vector>

#include "analysis/crosscheck.h"
#include "analysis/scheme_model.h"
#include "common/contracts.h"
#include "compiler/passes.h"
#include "faults/yield.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

/// P(this exact fault pattern) under iid word failure probability p.
double patternWeight(std::uint32_t pattern, std::uint32_t words, double p) {
    const int faulty = std::popcount(pattern);
    return std::pow(p, faulty) * std::pow(1.0 - p, static_cast<int>(words) - faulty);
}

FaultMap mapFromPattern(std::uint32_t pattern, std::uint32_t lines,
                        std::uint32_t wordsPerLine) {
    FaultMap map(lines, wordsPerLine);
    for (std::uint32_t flat = 0; flat < map.totalWords(); ++flat) {
        if ((pattern >> flat) & 1u) map.setFaultyFlat(flat);
    }
    return map;
}

// ---- binomial helpers ----

TEST(SchemeModel, BinomialPmfMatchesDirectFormula) {
    const unsigned n = 8;
    const double p = 0.3;
    const std::vector<double> pmf = analysis::binomialPmf(n, p);
    ASSERT_EQ(pmf.size(), n + 1);
    double total = 0.0;
    double choose = 1.0; // C(8, k) built incrementally
    for (unsigned k = 0; k <= n; ++k) {
        const double direct = choose * std::pow(p, k) * std::pow(1.0 - p, n - k);
        EXPECT_NEAR(pmf[k], direct, 1e-14) << "k=" << k;
        total += pmf[k];
        choose = choose * static_cast<double>(n - k) / static_cast<double>(k + 1);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(SchemeModel, BinomialPmfStableAtTinyP) {
    // 760mV word rates (~4e-6): pmf[0] must keep full precision, and the
    // tail must stay positive rather than underflow to zero garbage.
    const double p = 3.9e-6;
    const std::vector<double> pmf = analysis::binomialPmf(8, p);
    EXPECT_NEAR(pmf[0], std::exp(8 * std::log1p(-p)), 1e-18);
    EXPECT_GT(pmf[1], 0.0);
    EXPECT_NEAR(analysis::binomialTailAtLeast(8, p, 1), 1.0 - pmf[0], 1e-18);
}

TEST(SchemeModel, BinomialTailEdgeCases) {
    EXPECT_EQ(analysis::binomialTailAtLeast(8, 0.3, 0), 1.0);
    EXPECT_EQ(analysis::binomialTailAtLeast(8, 0.3, 9), 0.0);
    EXPECT_NEAR(analysis::binomialTailAtLeast(8, 0.0, 1), 0.0, 1e-15);
    EXPECT_NEAR(analysis::binomialTailAtLeast(8, 1.0, 8), 1.0, 1e-15);
}

// ---- FFW: exact on enumerable caches ----

TEST(SchemeModel, FfwWindowPmfMatchesEnumeration) {
    // One 8-word line, all 2^8 patterns: the distribution of
    // FaultMap::faultFreeCount must equal the model's Binomial pmf.
    const double p = 0.3;
    analysis::FfwModel model(p, 1, 8);
    std::array<double, 9> enumerated{};
    for (std::uint32_t pattern = 0; pattern < 256; ++pattern) {
        const FaultMap map = mapFromPattern(pattern, 1, 8);
        enumerated[map.faultFreeCount(0)] += patternWeight(pattern, 8, p);
    }
    for (unsigned k = 0; k <= 8; ++k) {
        EXPECT_NEAR(model.windowPmf()[k], enumerated[k], 1e-12) << "k=" << k;
        EXPECT_NEAR(model.expectedWindowCount(k, 10), enumerated[k] * 10.0, 1e-10);
    }
}

TEST(SchemeModel, FfwYieldMatchesEnumeration) {
    // 2 lines x 4 words: yield(minWindow) == P(every line keeps >= minWindow
    // fault-free words), enumerated over all 2^8 patterns.
    const double p = 0.25;
    analysis::FfwModel model(p, 2, 4);
    for (std::uint32_t minWindow = 0; minWindow <= 4; ++minWindow) {
        double enumerated = 0.0;
        for (std::uint32_t pattern = 0; pattern < 256; ++pattern) {
            const FaultMap map = mapFromPattern(pattern, 2, 4);
            if (map.faultFreeCount(0) >= minWindow && map.faultFreeCount(1) >= minWindow) {
                enumerated += patternWeight(pattern, 8, p);
            }
        }
        EXPECT_NEAR(model.yield(minWindow), enumerated, 1e-12)
            << "minWindow=" << minWindow;
    }
}

TEST(SchemeModel, FfwYieldDegenerateCases) {
    analysis::FfwModel model(0.3, 1024, 8);
    EXPECT_EQ(model.yield(0), 1.0);
    EXPECT_EQ(model.yield(9), 0.0);
    analysis::FfwModel clean(0.0, 1024, 8);
    EXPECT_NEAR(clean.yield(8), 1.0, 1e-15);
    analysis::FfwModel dead(1.0, 1024, 8);
    EXPECT_EQ(dead.yield(1), 0.0);
    EXPECT_NEAR(clean.meanWindowWords(), 8.0, 1e-15);
}

// ---- BBR chunk-length distribution: exact on enumerable caches ----

TEST(SchemeModel, BbrChunkCountsMatchEnumeration) {
    // 16-word array, all 2^16 patterns: E[#maximal runs of length L] from
    // FaultMap::faultFreeChunks must equal expectedChunkCount(L).
    const double p = 0.3;
    const std::uint32_t words = 16;
    analysis::BbrModel model(p, words);
    std::vector<double> enumerated(words + 1, 0.0);
    double totalEnumerated = 0.0;
    for (std::uint32_t pattern = 0; pattern < (1u << words); ++pattern) {
        const double weight = patternWeight(pattern, words, p);
        const FaultMap map = mapFromPattern(pattern, 2, 8);
        for (const FaultFreeChunk& chunk : map.faultFreeChunks()) {
            enumerated[chunk.length] += weight;
            totalEnumerated += weight;
        }
    }
    for (std::uint32_t length = 1; length <= words; ++length) {
        EXPECT_NEAR(model.expectedChunkCount(length), enumerated[length], 1e-12)
            << "L=" << length;
    }
    EXPECT_NEAR(model.expectedTotalChunks(), totalEnumerated, 1e-11);
}

TEST(SchemeModel, BbrLog2HistogramConsistentWithPerLengthCounts) {
    analysis::BbrModel model(0.1, 8192);
    const auto buckets = model.expectedChunkLog2Histogram();
    std::array<double, kForensicsLog2Buckets> rebuilt{};
    double total = 0.0;
    for (std::uint32_t length = 1; length <= 8192; ++length) {
        rebuilt[forensicsLog2Bucket(length)] += model.expectedChunkCount(length);
    }
    for (std::size_t b = 0; b < kForensicsLog2Buckets; ++b) {
        EXPECT_NEAR(buckets[b], rebuilt[b], 1e-9) << "bucket " << b;
        total += buckets[b];
    }
    EXPECT_NEAR(total, model.expectedTotalChunks(), 1e-9);
    EXPECT_EQ(buckets[0], 0.0); // maximal chunks are never length 0
}

// ---- BBR placement: exact DP + bounds vs enumeration ----

TEST(SchemeModel, PlacementSuccessExactMatchesEnumeration) {
    // P(circular max fault-free run >= B) over all 2^16 patterns, with
    // FaultMap::largestPlaceableChunkWords as the per-map oracle.
    const std::uint32_t words = 16;
    for (const double p : {0.05, 0.3, 0.7}) {
        analysis::BbrModel model(p, words);
        std::vector<double> enumerated(words + 1, 0.0); // [B] = P(run >= B)
        for (std::uint32_t pattern = 0; pattern < (1u << words); ++pattern) {
            const double weight = patternWeight(pattern, words, p);
            const FaultMap map = mapFromPattern(pattern, 2, 8);
            const std::uint32_t run = map.largestPlaceableChunkWords();
            for (std::uint32_t need = 1; need <= run && need <= words; ++need) {
                enumerated[need] += weight;
            }
        }
        for (std::uint32_t need = 1; need <= words; ++need) {
            EXPECT_NEAR(model.placementSuccessExact(need), enumerated[need], 1e-12)
                << "p=" << p << " need=" << need;
            EXPECT_TRUE(analysis::placementFeasible(mapFromPattern(0, 2, 8), need));
        }
    }
}

TEST(SchemeModel, PlacementSuccessClosedFormEdges) {
    analysis::BbrModel model(0.3, 16);
    EXPECT_EQ(model.placementSuccessExact(0), 1.0);
    EXPECT_EQ(model.placementSuccessExact(17), 0.0);
    // need == 1: succeeds unless every word is faulty.
    EXPECT_NEAR(model.placementSuccessExact(1), 1.0 - std::pow(0.3, 16), 1e-12);
    // need == N: every word must be clean.
    EXPECT_NEAR(model.placementSuccessExact(16), std::pow(0.7, 16), 1e-12);
    analysis::BbrModel one(0.3, 1);
    EXPECT_NEAR(one.placementSuccessExact(1), 0.7, 1e-15);
    analysis::BbrModel clean(0.0, 16);
    EXPECT_EQ(clean.placementSuccessExact(16), 1.0);
    analysis::BbrModel dead(1.0, 16);
    EXPECT_EQ(dead.placementSuccessExact(1), 0.0);
}

TEST(SchemeModel, PlacementBoundsSandwichExact) {
    for (const double p : {0.01, 0.1, 0.3, 0.6, 0.9}) {
        for (const std::uint32_t words : {8u, 16u, 33u, 64u}) {
            analysis::BbrModel model(p, words);
            for (std::uint32_t need = 1; need <= words; ++need) {
                const double exact = model.placementSuccessExact(need);
                const double lower = model.placementSuccessLower(need);
                const double upper = model.placementSuccessUpper(need);
                EXPECT_LE(lower, exact + 1e-12)
                    << "p=" << p << " N=" << words << " B=" << need;
                EXPECT_GE(upper, exact - 1e-12)
                    << "p=" << p << " N=" << words << " B=" << need;
            }
        }
    }
}

TEST(SchemeModel, PlacementFeasibleMatchesCircularFirstFit) {
    // The oracle behind the whole BBR model: a section of `size` words is
    // first-fit placeable iff some circular window of `size` consecutive
    // words is fault-free. Checked against a literal window scan on every
    // 12-word pattern.
    const std::uint32_t words = 12;
    for (std::uint32_t pattern = 0; pattern < (1u << words); ++pattern) {
        const FaultMap map = mapFromPattern(pattern, 3, 4);
        for (std::uint32_t size = 1; size <= words; ++size) {
            bool anyWindow = false;
            for (std::uint32_t start = 0; start < words && !anyWindow; ++start) {
                bool clean = true;
                for (std::uint32_t i = 0; i < size && clean; ++i) {
                    clean = !map.isFaultyFlat((start + i) % words);
                }
                anyWindow = clean;
            }
            EXPECT_EQ(analysis::placementFeasible(map, size), anyWindow)
                << "pattern=" << pattern << " size=" << size;
        }
    }
}

TEST(SchemeModel, ModuleNeedCoversBlocksAndSharedPools) {
    Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
    applyBbrTransforms(module);
    const std::uint32_t need = analysis::modulePlacementNeedWords(module);
    std::uint32_t maxBlock = 0;
    std::uint32_t maxPool = 0;
    for (const Function& fn : module.functions) {
        for (const BasicBlock& block : fn.blocks) {
            maxBlock = std::max(maxBlock, block.sizeWords());
        }
        maxPool = std::max(maxPool,
                           static_cast<std::uint32_t>(fn.sharedLiteralPool.size()));
    }
    EXPECT_EQ(need, std::max(maxBlock, maxPool));
    EXPECT_GT(need, 0u);
}

// ---- YieldAnalyzer::vccmin edge cases (satellite) ----

TEST(Yield, VccminRejectsDegenerateInputs) {
    const YieldAnalyzer analyzer;
    EXPECT_THROW((void)analyzer.vccmin(0), ContractViolation);
    EXPECT_THROW((void)analyzer.vccmin(1024, 1.0), ContractViolation);
    EXPECT_THROW((void)analyzer.vccmin(1024, 0.0), ContractViolation);
    EXPECT_THROW((void)analyzer.vccmin(1024, -0.5), ContractViolation);
}

TEST(Yield, VccminOnNearZeroFailureCurve) {
    // The 8T curve is the "p ~ 0" regime across the whole deep-voltage
    // range: bisection must still terminate, land far below the 6T Vccmin,
    // and satisfy its own yield target.
    const YieldAnalyzer analyzer8t(FailureModel(Technology::Node45nm, CellKind::Sram8T));
    const YieldAnalyzer analyzer6t;
    const Voltage v8 = analyzer8t.vccmin(granularity::kCache32KB);
    const Voltage v6 = analyzer6t.vccmin(granularity::kCache32KB);
    EXPECT_LT(v8.millivolts() + 100.0, v6.millivolts());
    EXPECT_GE(analyzer8t.yield(v8, granularity::kCache32KB), kPaperYieldTarget);
    // One single bit is the smallest legal structure.
    const Voltage vBit = analyzer6t.vccmin(granularity::kBit);
    EXPECT_GE(analyzer6t.yield(vBit, granularity::kBit), kPaperYieldTarget);
    EXPECT_LT(vBit.volts(), v6.volts());
}

// ---- cross-check statistics ----

TEST(Crosscheck, NormalQuantileMatchesKnownValues) {
    EXPECT_NEAR(analysis::normalQuantile(0.5), 0.0, 1e-9);
    EXPECT_NEAR(analysis::normalQuantile(0.975), 1.959964, 1e-5);
    EXPECT_NEAR(analysis::normalQuantile(0.025), -1.959964, 1e-5);
    EXPECT_NEAR(analysis::normalQuantile(1e-9), -5.997807, 1e-4);
}

TEST(Crosscheck, ChiSquareToZCalibration) {
    // A chi-square at its own mean is unremarkable; far above it is not.
    EXPECT_LT(std::abs(analysis::chiSquareToZ(7.0, 7)), 0.5);
    EXPECT_GT(analysis::chiSquareToZ(70.0, 7), 6.0);
    EXPECT_LT(analysis::chiSquareToZ(1.0, 7), 0.0);
}

TEST(Crosscheck, BinomialTwoSidedZBehaves) {
    // Dead-on observation: no evidence. Impossible observation: capped z.
    EXPECT_LT(analysis::binomialTwoSidedZ(1000, 300, 0.3), 1.0);
    EXPECT_GT(analysis::binomialTwoSidedZ(1000, 500, 0.3), 6.0);
    EXPECT_EQ(analysis::binomialTwoSidedZ(100, 100, 0.0), 40.0);
    EXPECT_NEAR(analysis::binomialTwoSidedZ(100, 0, 0.0), 0.0, 1e-12);
    EXPECT_NEAR(analysis::binomialTwoSidedZ(0, 0, 0.5), 0.0, 1e-12);
}

analysis::CrosscheckConfig smallCheckConfig() {
    analysis::CrosscheckConfig config;
    config.lines = 1024;
    config.wordsPerLine = 8;
    config.trials = 4;
    config.benchmarks = 1;
    return config;
}

analysis::CellSample modelDistributedCell(int mv, std::uint64_t maps) {
    // A cell whose histograms are the analytic expectation itself (rounded):
    // the null hypothesis made flesh — every check must pass.
    analysis::CellSample cell;
    cell.scheme = SchemeKind::FfwBbr;
    cell.mv = mv;
    cell.hasForensics = true;
    cell.forensics.legs = maps;
    cell.forensics.ffwLegs = maps;
    cell.forensics.bbrLegs = maps;
    const FailureModel model;
    const auto ffw = analysis::FfwModel::at(model, Voltage::fromMillivolts(mv), 1024, 8);
    for (unsigned k = 0; k <= 8; ++k) {
        cell.forensics.ffwWindowSize[k] = static_cast<std::uint64_t>(
            std::llround(ffw.expectedWindowCount(k, maps)));
    }
    const auto bbr = analysis::BbrModel::at(model, Voltage::fromMillivolts(mv), 8192);
    const auto chunkBuckets = bbr.expectedChunkLog2Histogram();
    for (std::size_t b = 0; b < kForensicsLog2Buckets; ++b) {
        cell.forensics.bbrChunkWords[b] = static_cast<std::uint64_t>(
            std::llround(chunkBuckets[b] * static_cast<double>(maps)));
    }
    analysis::PlacementSample placement;
    placement.benchmark = "synthetic";
    placement.needWords = 12;
    placement.chips = static_cast<std::uint32_t>(maps);
    placement.linkFailures = 0;
    cell.placements.push_back(placement);
    return cell;
}

TEST(Crosscheck, ModelDistributedCellPasses) {
    const std::vector<analysis::CellSample> cells = {modelDistributedCell(400, 4)};
    const auto report = analysis::crosscheckCells(cells, smallCheckConfig());
    ASSERT_FALSE(report.checks.empty());
    EXPECT_TRUE(report.passed()) << analysis::formatReport(report);
    EXPECT_LT(report.maxZ(), 3.0) << analysis::formatReport(report);
}

TEST(Crosscheck, GrosslyDistortedHistogramFails) {
    // Observe the 440mV window distribution while claiming 400mV: a gross
    // fault-rate corruption the chi-square must catch at n = 4096 lines.
    analysis::CellSample cell = modelDistributedCell(440, 4);
    cell.mv = 400;
    const std::vector<analysis::CellSample> cells = {cell};
    const auto report = analysis::crosscheckCells(cells, smallCheckConfig());
    EXPECT_FALSE(report.passed()) << analysis::formatReport(report);
    EXPECT_GT(report.maxZ(), 6.0);
}

TEST(Crosscheck, AllChipsFailingLinkWhenModelSaysTheyCannotFails) {
    analysis::CellSample cell = modelDistributedCell(400, 4);
    cell.forensics.bbrLegs = 0; // chunk histograms absent for failed legs
    cell.placements[0].linkFailures = cell.placements[0].chips;
    const std::vector<analysis::CellSample> cells = {cell};
    const auto report = analysis::crosscheckCells(cells, smallCheckConfig());
    EXPECT_FALSE(report.passed()) << analysis::formatReport(report);
}

TEST(Crosscheck, ChunkCheckSkippedUnderSelectionBias) {
    // One link failure: the surviving chunk histograms are a placeable-only
    // sample, so the chunk check must report skipped, not a verdict.
    analysis::CellSample cell = modelDistributedCell(400, 4);
    cell.placements[0].linkFailures = 1;
    const std::vector<analysis::CellSample> cells = {cell};
    const auto report = analysis::crosscheckCells(cells, smallCheckConfig());
    bool sawSkippedChunks = false;
    for (const analysis::CheckOutcome& check : report.checks) {
        if (check.name == "bbr-chunks") sawSkippedChunks = check.skipped;
    }
    EXPECT_TRUE(sawSkippedChunks) << analysis::formatReport(report);
    EXPECT_GT(report.skippedCount(), 0u);
}

TEST(Crosscheck, ReportJsonRoundTrips) {
    const std::vector<analysis::CellSample> cells = {modelDistributedCell(400, 4)};
    const auto report = analysis::crosscheckCells(cells, smallCheckConfig());
    JsonWriter json;
    analysis::writeJson(json, report);
    const std::string text = json.str();
    EXPECT_NE(text.find("\"maxZ\""), std::string::npos);
    EXPECT_NE(text.find("\"passed\":true"), std::string::npos);
    EXPECT_NE(text.find("ffw-window"), std::string::npos);
}

} // namespace
} // namespace voltcache
