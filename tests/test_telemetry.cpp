// Tests for the live telemetry plane: the Prometheus text-exposition
// renderer (names, escaping, log2 -> cumulative `le` buckets, deterministic
// ordering), the HTTP exporter, the bounded NDJSON leg journal (per-producer
// ordering + drop accounting under a saturated ring), metrics deltas, and a
// live in-process scrape against a real running sweep — which also proves
// that attaching the whole plane leaves the sweep JSON byte-identical.
#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/json_parse.h"
#include "common/socket.h"
#include "core/report.h"
#include "core/sweep.h"
#include "obs/export/http_server.h"
#include "obs/export/journal.h"
#include "obs/export/prometheus.h"
#include "obs/export/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_context.h"
#include "power/dvfs.h"

namespace voltcache {
namespace {

using literals::operator""_mV;
using obs::LabelList;
using obs::MetricKind;
using obs::MetricSnapshot;

std::string tempPath(const char* stem) {
    return testing::TempDir() + stem;
}

// ---- Prometheus renderer ----

TEST(Prometheus, NameSanitization) {
    EXPECT_EQ(obs::prometheusName("sweep.legs_per_sec"),
              "voltcache_sweep_legs_per_sec");
    EXPECT_EQ(obs::prometheusName("l1d.faulty-words"), "voltcache_l1d_faulty_words");
    // A leading digit after the prefix is still a valid exposition name, but
    // sanitize anything that is not [a-zA-Z0-9_:].
    EXPECT_EQ(obs::prometheusName("a b"), "voltcache_a_b");
    EXPECT_EQ(obs::prometheusLabelName("mv"), "mv");
    EXPECT_EQ(obs::prometheusLabelName("fail.cause"), "fail_cause");
    // Label names may not start with a digit and never take the namespace
    // prefix.
    EXPECT_EQ(obs::prometheusLabelName("9lives"), "_lives");
}

TEST(Prometheus, LabelValueEscaping) {
    EXPECT_EQ(obs::prometheusEscapeLabel("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(obs::prometheusEscapeHelp("slash \\ newline \n"),
              "slash \\\\ newline \\n");
}

TEST(Prometheus, CounterRendering) {
    std::vector<MetricSnapshot> snapshot(1);
    snapshot[0].name = "bbr.fetch_misses";
    snapshot[0].labels = {{"scheme", "ffw+bbr"}, {"mv", "400"}};
    snapshot[0].kind = MetricKind::Counter;
    snapshot[0].count = 42;
    const std::string text = obs::renderPrometheus(snapshot);
    EXPECT_NE(text.find("# HELP voltcache_bbr_fetch_misses_total "
                        "voltcache metric 'bbr.fetch_misses'\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE voltcache_bbr_fetch_misses_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("voltcache_bbr_fetch_misses_total"
                        "{scheme=\"ffw+bbr\",mv=\"400\"} 42\n"),
              std::string::npos);
}

// Hand-computed log2 -> cumulative `le` mapping: observations {0,1,2,3,8}.
// Bucket 0 holds 0; bucket b>0 holds [2^(b-1), 2^b), so the inclusive upper
// bounds are 0, 1, 3, 7, 15, ... and the cumulative counts must be
// 1, 2, 4, 4, 5, +Inf=5 with sum 14 and count 5.
TEST(Prometheus, HistogramCumulativeBuckets) {
    obs::MetricsRegistry registry;
    for (const std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 8ull}) {
        registry.observe("leg.duration", {}, v);
    }
    const std::string text = obs::renderPrometheus(registry.snapshot());
    EXPECT_NE(text.find("# TYPE voltcache_leg_duration histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("voltcache_leg_duration_bucket{le=\"0\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("voltcache_leg_duration_bucket{le=\"1\"} 2\n"),
              std::string::npos);
    EXPECT_NE(text.find("voltcache_leg_duration_bucket{le=\"3\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("voltcache_leg_duration_bucket{le=\"7\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("voltcache_leg_duration_bucket{le=\"15\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("voltcache_leg_duration_bucket{le=\"+Inf\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("voltcache_leg_duration_sum 14\n"), std::string::npos);
    EXPECT_NE(text.find("voltcache_leg_duration_count 5\n"), std::string::npos);
}

TEST(Prometheus, HelpAndTypeOncePerFamilyAndDeterministicOrder) {
    obs::MetricsRegistry registry;
    registry.add("l1.hits", {{"scheme", "8T"}}, 1);
    registry.add("l1.hits", {{"scheme", "ffw+bbr"}}, 2);
    registry.set("sweep.workers", {}, 4.0);
    const std::string text = obs::renderPrometheus(registry.snapshot());
    // One HELP/TYPE header covers both label sets of the same family.
    std::size_t helpCount = 0;
    for (std::size_t pos = 0;
         (pos = text.find("# HELP voltcache_l1_hits_total", pos)) != std::string::npos;
         ++pos) {
        ++helpCount;
    }
    EXPECT_EQ(helpCount, 1u);
    // Two scrapes of the same registry are byte-identical (snapshot is
    // (name, labels)-sorted and the renderer adds no nondeterminism).
    EXPECT_EQ(text, obs::renderPrometheus(registry.snapshot()));
    // Counters sort before the gauge (name order), labels in value order.
    EXPECT_LT(text.find("scheme=\"8T\""), text.find("scheme=\"ffw+bbr\""));
    EXPECT_LT(text.find("voltcache_l1_hits_total"),
              text.find("voltcache_sweep_workers"));
}

// ---- metrics deltas ----

TEST(MetricsDelta, TurnsCumulativeCountersIntoRates) {
    obs::TimedMetricsSnapshot prev;
    prev.monotonicNs = 1'000'000'000;
    prev.metrics.resize(1);
    prev.metrics[0].name = "sweep.legs";
    prev.metrics[0].kind = MetricKind::Counter;
    prev.metrics[0].count = 10;

    obs::TimedMetricsSnapshot now;
    now.monotonicNs = 3'000'000'000; // +2s
    now.metrics.resize(2);
    now.metrics[0].name = "sweep.legs";
    now.metrics[0].kind = MetricKind::Counter;
    now.metrics[0].count = 30;
    now.metrics[1].name = "sweep.workers";
    now.metrics[1].kind = MetricKind::Gauge;
    now.metrics[1].value = 8.0;

    const auto rates = obs::metricsDelta(prev, now);
    ASSERT_EQ(rates.size(), 1u); // the gauge is skipped
    EXPECT_EQ(rates[0].name, "sweep.legs");
    EXPECT_EQ(rates[0].delta, 20u);
    EXPECT_NEAR(rates[0].perSec, 10.0, 1e-9);
}

TEST(MetricsDelta, ClampsBackwardsCountersAndRatesNewFamiliesFromZero) {
    obs::TimedMetricsSnapshot prev;
    prev.monotonicNs = 0;
    prev.metrics.resize(1);
    prev.metrics[0].name = "a";
    prev.metrics[0].kind = MetricKind::Counter;
    prev.metrics[0].count = 100;

    obs::TimedMetricsSnapshot now;
    now.monotonicNs = 1'000'000'000;
    now.metrics.resize(2);
    now.metrics[0].name = "a";
    now.metrics[0].kind = MetricKind::Counter;
    now.metrics[0].count = 40; // went backwards: clamp, don't go negative
    now.metrics[1].name = "b";
    now.metrics[1].kind = MetricKind::Counter;
    now.metrics[1].count = 7; // absent from prev: rates from zero

    const auto rates = obs::metricsDelta(prev, now);
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_EQ(rates[0].delta, 0u);
    EXPECT_EQ(rates[1].delta, 7u);
}

TEST(MetricsDelta, SnapshotDeltaAdvancesThePreviousSnapshot) {
    obs::MetricsRegistry registry;
    registry.add("x", {}, 5);
    obs::TimedMetricsSnapshot prev = registry.snapshotTimed();
    registry.add("x", {}, 3);
    const auto rates = registry.snapshotDelta(prev);
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_EQ(rates[0].delta, 3u);
    // prev advanced: an immediate second delta is zero.
    const auto again = registry.snapshotDelta(prev);
    ASSERT_EQ(again.size(), 1u);
    EXPECT_EQ(again[0].delta, 0u);
}

// Scrapers race writers in production (the exporter thread snapshots while
// the sweep's workers publish): deltas must never tear, go negative, or
// lose counts — the accumulated deltas plus one final settle-up must equal
// exactly what the writers added.
TEST(MetricsDelta, SnapshotDeltaIsExactUnderConcurrentWriters) {
    obs::MetricsRegistry registry;
    constexpr int kWriters = 4;
    constexpr std::uint64_t kAddsPerWriter = 20'000;

    std::atomic<bool> go{false};
    std::vector<std::thread> writers;
    writers.reserve(kWriters);
    for (int w = 0; w < kWriters; ++w) {
        writers.emplace_back([&registry, &go, w] {
            while (!go.load(std::memory_order_acquire)) {}
            obs::Counter counter = registry.counter(
                "contended", {{"writer", std::to_string(w)}});
            for (std::uint64_t i = 0; i < kAddsPerWriter; ++i) counter.add();
        });
    }

    obs::TimedMetricsSnapshot prev = registry.snapshotTimed();
    go.store(true, std::memory_order_release);
    std::uint64_t accumulated = 0;
    for (int scrape = 0; scrape < 50; ++scrape) {
        for (const obs::MetricRate& rate : registry.snapshotDelta(prev)) {
            accumulated += rate.delta;
        }
    }
    for (std::thread& writer : writers) writer.join();
    for (const obs::MetricRate& rate : registry.snapshotDelta(prev)) {
        accumulated += rate.delta;
    }
    EXPECT_EQ(accumulated, static_cast<std::uint64_t>(kWriters) * kAddsPerWriter);

    // And the timed snapshot agrees with the settled registry.
    std::uint64_t total = 0;
    for (const MetricSnapshot& metric : registry.snapshotTimed().metrics) {
        if (metric.name == "contended") total += metric.count;
    }
    EXPECT_EQ(total, static_cast<std::uint64_t>(kWriters) * kAddsPerWriter);
}

// ---- HTTP server ----

TEST(HttpServer, ServesRoutesAnd404s) {
    obs::HttpServer server(0);
    server.route("/healthz", [] {
        obs::HttpServer::Response response;
        response.body = "ok\n";
        return response;
    });
    server.start();
    ASSERT_NE(server.port(), 0);
    EXPECT_EQ(net::httpGet("127.0.0.1", server.port(), "/healthz"), "ok\n");
    EXPECT_THROW((void)net::httpGet("127.0.0.1", server.port(), "/nope"),
                 std::runtime_error);
    EXPECT_GE(server.requestsServed(), 2u);
    server.stop();
}

TEST(HttpServer, PrefixRoutesYieldToExactAndLongestPrefixWins) {
    obs::HttpServer server(0);
    server.route("/trace", [] {
        obs::HttpServer::Response response;
        response.body = "index";
        return response;
    });
    server.routePrefix("/trace/", [](std::string_view suffix) {
        obs::HttpServer::Response response;
        response.body = "job:" + std::string(suffix);
        return response;
    });
    server.routePrefix("/trace/raw/", [](std::string_view suffix) {
        obs::HttpServer::Response response;
        response.body = "raw:" + std::string(suffix);
        return response;
    });
    server.start();
    ASSERT_NE(server.port(), 0);
    const auto port = server.port();
    EXPECT_EQ(net::httpGet("127.0.0.1", port, "/trace"), "index");
    EXPECT_EQ(net::httpGet("127.0.0.1", port, "/trace/job-7"), "job:job-7");
    EXPECT_EQ(net::httpGet("127.0.0.1", port, "/trace/raw/job-7"), "raw:job-7");
    EXPECT_THROW((void)net::httpGet("127.0.0.1", port, "/tracery"),
                 std::runtime_error);
    server.stop();
}

// --telemetry-port 0 must bind an ephemeral port and serve the enriched
// /healthz (build identity, uptime, store occupancy) plus the /trace index.
TEST(Telemetry, EphemeralPortZeroBindsAndServesHealthAndTraceRoutes) {
    obs::ProgressBoard board;
    obs::TelemetryServer server(0, board);
    ASSERT_NE(server.port(), 0);

    // Two ephemeral exporters coexist on distinct ports.
    obs::ProgressBoard board2;
    obs::TelemetryServer server2(0, board2);
    ASSERT_NE(server2.port(), 0);
    EXPECT_NE(server.port(), server2.port());

    const JsonValue health =
        parseJson(net::httpGet("127.0.0.1", server.port(), "/healthz"));
    EXPECT_EQ(health.stringOr("status", ""), "ok");
    EXPECT_FALSE(health.stringOr("version", "").empty());
    EXPECT_GE(health.numberOr("uptimeSeconds", -1.0), 0.0);
    const JsonValue* storeDoc = health.find("store");
    ASSERT_NE(storeDoc, nullptr);
    EXPECT_GE(storeDoc->numberOr("entries", -1.0), 0.0);
    EXPECT_GE(storeDoc->numberOr("bytes", -1.0), 0.0);

    // /trace serves the job index; /trace/<unknown> is a clean 404.
    const JsonValue index =
        parseJson(net::httpGet("127.0.0.1", server.port(), "/trace"));
    EXPECT_EQ(index.stringOr("kind", ""), "traceIndex");
    EXPECT_THROW(
        (void)net::httpGet("127.0.0.1", server.port(), "/trace/not-a-job"),
        std::runtime_error);
}

// ---- NDJSON leg journal ----

TEST(LegJournal, WritesParseableLinesInPerProducerOrder) {
    const std::string path = tempPath("journal_order.ndjson");
    {
        obs::LegJournal journal(path, 2, 64, /*autoDrain=*/false);
        for (int i = 0; i < 5; ++i) {
            obs::JournalEvent event;
            event.phase = obs::JournalEvent::Phase::Enqueued;
            event.leg = static_cast<std::uint32_t>(i);
            event.setBenchmark("crc32");
            event.setScheme("ffw+bbr");
            event.voltageMv = 400;
            journal.emit(0, event);
        }
        obs::JournalEvent finished;
        finished.phase = obs::JournalEvent::Phase::Finished;
        finished.leg = 2;
        finished.worker = 1;
        finished.setBenchmark("crc32");
        finished.setScheme("ffw+bbr");
        finished.voltageMv = 400;
        finished.linkFailed = true;
        finished.setFailCause("shape");
        finished.durationNs = 1234;
        journal.emit(1, finished);
        journal.close();
        EXPECT_EQ(journal.written(), 6u);
        EXPECT_EQ(journal.dropped(), 0u);
    }
    std::ifstream in(path);
    std::string line;
    std::uint64_t expectedSeq = 0;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        const JsonValue doc = parseJson(line); // throws on a malformed line
        ++lines;
        if (doc.stringOr("ev", "") == "enqueued") {
            // SPSC FIFO + in-order drain: producer-0 sequences ascend.
            EXPECT_EQ(doc.numberOr("seq", -1.0), static_cast<double>(expectedSeq++));
            EXPECT_EQ(doc.stringOr("benchmark", ""), "crc32");
        } else {
            EXPECT_EQ(doc.stringOr("ev", ""), "finished");
            EXPECT_EQ(doc.stringOr("outcome", ""), "link_failed");
            EXPECT_EQ(doc.stringOr("cause", ""), "shape");
            EXPECT_EQ(doc.numberOr("durationNs", 0.0), 1234.0);
        }
    }
    EXPECT_EQ(lines, 6u);
    std::remove(path.c_str());
}

TEST(LegJournal, DropsInsteadOfBlockingWhenTheRingSaturates) {
    const std::string path = tempPath("journal_drop.ndjson");
    obs::LegJournal journal(path, 1, /*ringCapacity=*/4, /*autoDrain=*/false);
    obs::JournalEvent event;
    event.setBenchmark("qsort");
    for (int i = 0; i < 10; ++i) journal.emit(0, event);
    // Capacity 4 ring, no drainer: 4 held, 6 dropped — never a stall.
    EXPECT_EQ(journal.dropped(), 6u);
    EXPECT_EQ(journal.drainOnce(), 4u);
    // Draining frees the slots; later events flow again.
    journal.emit(0, event);
    EXPECT_EQ(journal.dropped(), 6u);
    journal.close();
    EXPECT_EQ(journal.written(), 5u);
    // An out-of-range producer index is accounted as a drop, not UB.
    std::remove(path.c_str());
}

TEST(LegJournal, StampsTraceContextAndCachedFlagOnLines) {
    const std::string path = tempPath("journal_trace.ndjson");
    obs::LegJournal journal(path, 1, 8, /*autoDrain=*/false);
    obs::TraceContext context;
    ASSERT_TRUE(obs::parseTraceIdHex("0123456789abcdef0123456789abcdef", context));

    obs::JournalEvent traced;
    traced.phase = obs::JournalEvent::Phase::Finished;
    traced.setBenchmark("crc32");
    traced.cached = true;
    traced.traceHi = context.traceHi;
    traced.traceLo = context.traceLo;
    traced.spanId = obs::childSpanId(context, 0);
    journal.emit(0, traced);
    obs::JournalEvent untraced;
    untraced.setBenchmark("crc32");
    journal.emit(0, untraced);
    journal.close();

    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const JsonValue first = parseJson(line);
    EXPECT_EQ(first.stringOr("trace", ""), "0123456789abcdef0123456789abcdef");
    EXPECT_EQ(first.stringOr("span", ""), obs::spanIdHex(traced.spanId));
    const JsonValue* cached = first.find("cached");
    ASSERT_NE(cached, nullptr);
    EXPECT_TRUE(cached->asBool());
    // Untraced lines carry no trace/span keys at all.
    ASSERT_TRUE(std::getline(in, line));
    const JsonValue second = parseJson(line);
    EXPECT_EQ(second.find("trace"), nullptr);
    EXPECT_EQ(second.find("span"), nullptr);
    std::remove(path.c_str());
}

TEST(LegJournal, RotatesAtTheByteCapAndKeepsOneGeneration) {
    const std::string path = tempPath("journal_rotate.ndjson");
    // ~150-byte lines against a 400-byte cap: every few writes rotate.
    obs::LegJournal journal(path, 1, 64, /*autoDrain=*/false,
                            /*maxBytes=*/400);
    obs::JournalEvent event;
    event.phase = obs::JournalEvent::Phase::Finished;
    event.setBenchmark("basicmath");
    event.setScheme("ffw+bbr");
    event.voltageMv = 400;
    event.durationNs = 123456;
    for (std::uint32_t i = 0; i < 24; ++i) {
        event.leg = i;
        journal.emit(0, event);
        (void)journal.drainOnce();
    }
    journal.close();
    EXPECT_EQ(journal.written(), 24u);
    EXPECT_GE(journal.rotations(), 1u);

    // Live file and exactly one rotated generation, both bounded and valid
    // NDJSON; together they hold the newest lines (older ones rotated away).
    std::uint64_t kept = 0;
    for (const std::string& file : {path, path + ".1"}) {
        std::ifstream in(file);
        ASSERT_TRUE(in.good()) << file;
        std::string line;
        std::uint64_t bytes = 0;
        while (std::getline(in, line)) {
            EXPECT_NO_THROW((void)parseJson(line));
            bytes += line.size() + 1;
            ++kept;
        }
        EXPECT_LE(bytes, 400u + 200u) << file; // cap + one in-flight line
    }
    EXPECT_LT(kept, 24u);  // rotation discarded the oldest generation
    EXPECT_GT(kept, 0u);
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

TEST(LegJournal, OutOfRangeProducerCountsAsDrop) {
    const std::string path = tempPath("journal_range.ndjson");
    obs::LegJournal journal(path, 1, 8, /*autoDrain=*/false);
    obs::JournalEvent event;
    journal.emit(5, event);
    EXPECT_EQ(journal.dropped(), 1u);
    journal.close();
    EXPECT_EQ(journal.written(), 0u);
    std::remove(path.c_str());
}

// ---- live integration: a real sweep with the full plane attached ----

SweepConfig tinySweep(unsigned threads) {
    SweepConfig config;
    config.benchmarks = {"crc32"};
    config.schemes = {SchemeKind::SimpleWordDisable, SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(560_mV), DvfsTable::at(400_mV)};
    config.trials = 2;
    config.scale = WorkloadScale::Tiny;
    config.threads = threads;
    return config;
}

std::string exportJson(const SweepResult& result, const SweepConfig& config) {
    SweepExportMeta meta;
    meta.version = "telemetry-test"; // fixed: exclude git describe from the diff
    meta.seed = config.baseSeed;
    meta.trials = config.trials;
    meta.scale = "tiny";
    meta.benchmarks = config.benchmarks;
    return sweepResultToJson(result, meta);
}

TEST(Telemetry, LiveScrapeDuringSweepAndByteIdenticalExport) {
    // Reference run: no hooks at all.
    const SweepConfig plain = tinySweep(2);
    const std::string referenceJson = exportJson(runSweep(plain), plain);

    obs::ProgressBoard board;
    obs::TelemetryServer server(0, board);
    ASSERT_NE(server.port(), 0);

    const std::string journalPath = tempPath("journal_live.ndjson");
    obs::LegJournal journal(journalPath, 1 + 2, 4096);

    // The full PR 10 plane rides along too: end-to-end job tracing and the
    // armed flight recorder, both of which must also leave the export alone.
    const std::string flightPath = tempPath("flight_live.json");
    obs::FlightRecorder::Options flightOptions;
    flightOptions.path = flightPath;
    obs::FlightRecorder& flight = obs::FlightRecorder::install(flightOptions);

    std::atomic<std::size_t> enqueued{0};
    std::atomic<std::size_t> started{0};
    std::atomic<std::size_t> finished{0};
    std::string metricsBody;
    std::string progressBody;
    bool scraped = false;

    SweepConfig instrumented = tinySweep(2);
    instrumented.trace = obs::makeRootContext("live-test");
    obs::JobTraceStore::global().clear();
    obs::JobTraceStore::global().beginJob("live-test", instrumented.trace);
    instrumented.onLegEvent = [&](const SweepLegEvent& event) {
        obs::JournalEvent line;
        switch (event.phase) {
        case SweepLegEvent::Phase::Enqueued:
            line.phase = obs::JournalEvent::Phase::Enqueued;
            enqueued.fetch_add(1, std::memory_order_relaxed);
            break;
        case SweepLegEvent::Phase::Started:
            line.phase = obs::JournalEvent::Phase::Started;
            started.fetch_add(1, std::memory_order_relaxed);
            break;
        case SweepLegEvent::Phase::Finished:
            line.phase = obs::JournalEvent::Phase::Finished;
            finished.fetch_add(1, std::memory_order_relaxed);
            break;
        }
        line.leg = static_cast<std::uint32_t>(event.leg);
        line.worker = event.worker;
        line.setBenchmark(event.benchmark);
        line.setScheme(schemeName(event.scheme));
        line.voltageMv = event.voltageMv;
        line.trial = event.trial;
        line.replayed = event.replayed;
        line.linkFailed = event.linkFailed;
        line.durationNs = event.durationNs;
        line.cached = event.cached;
        line.traceHi = event.traceHi;
        line.traceLo = event.traceLo;
        line.spanId = event.spanId;
        flight.noteLegEvent(line);
        journal.emit(event.phase == SweepLegEvent::Phase::Enqueued ? 0
                                                                   : event.worker + 1,
                     line);
    };
    instrumented.onProgress = [&](const SweepProgress& progress) {
        obs::ProgressBoard::Tick tick;
        tick.benchmarksCompleted = progress.completed;
        tick.benchmarksTotal = progress.total;
        tick.benchmark = progress.benchmark;
        tick.boundary = progress.boundary;
        tick.legsCompleted = progress.legsCompleted;
        tick.legsTotal = progress.legsTotal;
        tick.legsReplayed = progress.legsReplayed;
        tick.legsExecuted = progress.legsExecuted;
        tick.workers = progress.workers;
        board.update(tick);
        // Scrape from inside the sweep — this is a genuinely mid-run scrape,
        // serialized under the progress lock so it happens exactly once.
        if (!scraped) {
            scraped = true;
            metricsBody = net::httpGet("127.0.0.1", server.port(), "/metrics");
            progressBody = net::httpGet("127.0.0.1", server.port(), "/progress");
        }
    };

    const SweepResult result = runSweep(instrumented);
    obs::JobTraceStore::global().endJob(instrumented.trace);
    board.finish();
    journal.close();

    // The plane observed the run...
    ASSERT_TRUE(scraped);
    EXPECT_NE(metricsBody.find("# TYPE voltcache_"), std::string::npos);
    const JsonValue progress = parseJson(progressBody); // well-formed JSON
    EXPECT_EQ(progress.stringOr("kind", ""), "progress");
    const JsonValue* legs = progress.find("legs");
    ASSERT_NE(legs, nullptr);
    EXPECT_GT(legs->numberOr("total", 0.0), 0.0);

    // ...every leg produced its full lifecycle...
    const std::size_t legCount = enqueued.load();
    EXPECT_GT(legCount, 0u);
    EXPECT_EQ(started.load(), legCount);
    EXPECT_EQ(finished.load(), legCount);
    EXPECT_EQ(journal.written() + journal.dropped(), 3 * legCount);

    // ...the journal is valid NDJSON end to end...
    std::ifstream in(journalPath);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) {
        EXPECT_NO_THROW((void)parseJson(line));
        ++lines;
    }
    EXPECT_EQ(lines, journal.written());
    std::remove(journalPath.c_str());

    // ...the trace store collected one span per leg plus the root...
    const JsonValue trace =
        parseJson(obs::JobTraceStore::global().toChromeJson("live-test"));
    EXPECT_EQ(trace.stringOr("kind", ""), "trace");
    EXPECT_GE(trace.numberOr("spanCount", 0.0), static_cast<double>(legCount));
    EXPECT_GT(flight.eventsNoted(), 0u);
    obs::JobTraceStore::global().clear();

    // ...and observation never changed the result: byte-identical export.
    EXPECT_EQ(exportJson(result, instrumented), referenceJson);

    // The finished board reports done with an up-to-date leg count.
    const JsonValue finalDoc = parseJson(board.toJson());
    const JsonValue* done = finalDoc.find("done");
    ASSERT_NE(done, nullptr);
    EXPECT_TRUE(done->asBool());
}

} // namespace
} // namespace voltcache
