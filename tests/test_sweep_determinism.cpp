// Determinism guarantees of the parallel sweep executor and the geometric
// fault-map sampler:
//   * the exported sweep JSON is byte-identical for any worker count
//     (per-leg slots + reduction in canonical leg order), and
//   * geometric gap-skipping generation produces exactly the map the coupled
//     per-word Bernoulli reference does, over a (seed, voltage) grid.
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/report.h"
#include "core/sweep.h"
#include "faults/fault_map.h"
#include "power/dvfs.h"

namespace voltcache {
namespace {

using literals::operator""_mV;

SweepConfig smallConfig(unsigned threads) {
    SweepConfig config;
    config.benchmarks = {"crc32", "basicmath"};
    config.schemes = {SchemeKind::Robust8T, SchemeKind::SimpleWordDisable,
                      SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(560_mV), DvfsTable::at(400_mV)};
    config.trials = 2;
    config.scale = WorkloadScale::Tiny;
    config.threads = threads;
    return config;
}

std::string exportJson(const SweepResult& result, const SweepConfig& config) {
    SweepExportMeta meta;
    meta.version = "determinism-test"; // fixed: exclude git describe from the diff
    meta.seed = config.baseSeed;
    meta.trials = config.trials;
    meta.scale = "tiny";
    meta.benchmarks = config.benchmarks;
    return sweepResultToJson(result, meta);
}

TEST(SweepDeterminism, JsonBitIdenticalAcrossThreadCounts) {
    const SweepConfig c1 = smallConfig(1);
    const std::string json1 = exportJson(runSweep(c1), c1);
    for (const unsigned threads : {2u, 8u}) {
        const SweepConfig cn = smallConfig(threads);
        const std::string jsonN = exportJson(runSweep(cn), cn);
        EXPECT_EQ(json1, jsonN) << "sweep JSON differs at --threads " << threads;
    }
}

// The batched replay engine must be a pure scheduling change: streaming one
// trace through B fault maps at once has to export the very bytes the
// one-lane-at-a-time path exports, at every thread count and for batch sizes
// below, at, and above the trial count (1 lane degenerates to the unbatched
// shape, 7 splits a 9-trial group unevenly, 9 is exactly one batch, 64
// clamps to the trial group, 0 asks for the engine default).
TEST(SweepDeterminism, BatchedJsonBitIdenticalToUnbatched) {
    const auto batchConfig = [](unsigned threads, bool useBatch, unsigned batchLanes) {
        SweepConfig config;
        config.benchmarks = {"crc32"};
        config.schemes = {SchemeKind::Robust8T, SchemeKind::SimpleWordDisable,
                          SchemeKind::FfwBbr};
        config.points = {DvfsTable::at(560_mV), DvfsTable::at(400_mV)};
        config.trials = 9;
        config.scale = WorkloadScale::Tiny;
        config.threads = threads;
        config.useBatch = useBatch;
        config.batchLanes = batchLanes;
        return config;
    };
    const SweepConfig ref = batchConfig(1, false, 0);
    const std::string refJson = exportJson(runSweep(ref), ref);
    for (const unsigned threads : {1u, 2u, 8u}) {
        for (const unsigned lanes : {1u, 7u, 9u, 64u, 0u}) {
            const SweepConfig config = batchConfig(threads, true, lanes);
            EXPECT_EQ(refJson, exportJson(runSweep(config), config))
                << "batched sweep JSON diverges from unbatched at --threads "
                << threads << " --batch " << lanes;
        }
    }
}

// generateBatch() is generate() run lane by lane off the same uniform
// streams: each lane's map must match a sequential draw from an identically
// seeded RNG, and the lane RNGs must land in the same state afterwards —
// the chip builder draws the I-cache map from the continuation of the
// D-cache map's stream, so a state divergence would silently decouple the
// batched sweep from the sequential one on the *next* structure.
TEST(SweepDeterminism, GenerateBatchMatchesSequentialGenerate) {
    const FaultMapGenerator generator;
    constexpr std::uint32_t kLanes = 8;
    for (const std::uint64_t seed : {1ull, 42ull, 0xC0FFEEull}) {
        for (const int mv : {760, 560, 480, 400}) {
            const Voltage v = Voltage::fromMillivolts(mv);
            std::vector<Rng> batched;
            std::vector<Rng> sequential;
            for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
                batched.emplace_back(seed + lane);
                sequential.emplace_back(seed + lane);
            }
            const std::vector<FaultMap> maps =
                generator.generateBatch(std::span<Rng>(batched), v, 1024, 8);
            ASSERT_EQ(maps.size(), kLanes);
            for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
                const FaultMap expected = generator.generate(sequential[lane], v, 1024, 8);
                EXPECT_EQ(maps[lane], expected)
                    << "lane " << lane << " diverges at seed " << seed << ", " << mv
                    << "mV";
                // Continuation draw: the next structure off the same stream.
                const FaultMap nextBatched = generator.generate(batched[lane], v, 512, 8);
                const FaultMap nextSequential =
                    generator.generate(sequential[lane], v, 512, 8);
                EXPECT_EQ(nextBatched, nextSequential)
                    << "lane " << lane << " RNG state diverges after batch at seed "
                    << seed << ", " << mv << "mV";
            }
        }
    }
}

// Worker count is clamped by legs, not benchmarks: a one-benchmark sweep on
// many threads must still produce the single-thread result (and not deadlock
// or lose legs).
TEST(SweepDeterminism, ManyThreadsFewLegs) {
    SweepConfig config;
    config.benchmarks = {"crc32"};
    config.schemes = {SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(400_mV)};
    config.trials = 1;
    config.scale = WorkloadScale::Tiny;

    config.threads = 1;
    const std::string json1 = exportJson(runSweep(config), config);
    config.threads = 16;
    const std::string json16 = exportJson(runSweep(config), config);
    EXPECT_EQ(json1, json16);
}

TEST(SweepDeterminism, GeometricSamplingMatchesBernoulliReference) {
    const FaultMapGenerator generator;
    for (const std::uint64_t seed : {1ull, 2ull, 3ull, 42ull, 0xC0FFEEull}) {
        for (const int mv : {760, 700, 640, 600, 560, 520, 480, 440, 400}) {
            const Voltage v = Voltage::fromMillivolts(mv);
            Rng fast(seed);
            Rng slow(seed);
            const FaultMap geometric = generator.generate(fast, v, 1024, 8);
            const FaultMap reference =
                generator.generateBernoulliReference(slow, v, 1024, 8);
            EXPECT_EQ(geometric, reference)
                << "maps diverge at seed " << seed << ", " << mv << "mV ("
                << geometric.totalFaultyWords() << " vs "
                << reference.totalFaultyWords() << " faulty words)";
        }
    }
}

// Sanity on the grid's extremes: high voltage must stay clean, the deepest
// point must actually produce faults (the equality test above would pass
// trivially on all-clean maps).
TEST(SweepDeterminism, GeometricSamplingGridIsNonTrivial) {
    const FaultMapGenerator generator;
    Rng high(7);
    EXPECT_TRUE(generator.generate(high, 760_mV, 1024, 8).clean());
    Rng low(7);
    EXPECT_GT(generator.generate(low, 400_mV, 1024, 8).totalFaultyWords(), 0u);
}

} // namespace
} // namespace voltcache
