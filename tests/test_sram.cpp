// Tests for the SRAM physical models: cell traits, the alpha-power delay
// model (Table II), and CACTI-lite (Fig. 9 timings, Table III areas).
#include <gtest/gtest.h>

#include <cmath>

#include "schemes/static_overheads.h"
#include "sram/cacti_lite.h"
#include "sram/cells.h"
#include "sram/delay_model.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

TEST(Cells, TraitsMatchLiterature) {
    EXPECT_DOUBLE_EQ(cellTraits(SramCell::C6T).areaRel, 1.0);
    EXPECT_DOUBLE_EQ(cellTraits(SramCell::C8T).areaRel, 1.3);   // [34]
    EXPECT_NEAR(cellTraits(SramCell::C8T).leakageRel, 1.002, 1e-9);
    EXPECT_GT(cellTraits(SramCell::C10T).areaRel, cellTraits(SramCell::C8T).areaRel);
    EXPECT_GE(cellTraits(SramCell::CST).areaRel, 2.0);
    EXPECT_GT(cellTraits(SramCell::CCAM).leakageRel, 3.0);
}

// ---- Delay model vs Table II ----

struct FreqPoint {
    double mv;
    double mhz;
};

class DelayModelTableII : public ::testing::TestWithParam<FreqPoint> {};

TEST_P(DelayModelTableII, WithinCalibrationError) {
    const DelayModel model;
    const auto [mv, mhz] = GetParam();
    const double predicted = model.frequencyAt(Voltage::fromMillivolts(mv)).megahertz();
    EXPECT_NEAR(predicted / mhz, 1.0, 0.025) << mv << "mV";
}

INSTANTIATE_TEST_SUITE_P(TableII, DelayModelTableII,
                         ::testing::Values(FreqPoint{760, 1607}, FreqPoint{560, 1089},
                                           FreqPoint{520, 958}, FreqPoint{480, 818},
                                           FreqPoint{440, 638}, FreqPoint{400, 475}));

TEST(DelayModel, PaperFrequencyExactLookup) {
    EXPECT_DOUBLE_EQ(DelayModel::paperFrequency(760_mV)->megahertz(), 1607.0);
    EXPECT_DOUBLE_EQ(DelayModel::paperFrequency(400_mV)->megahertz(), 475.0);
    EXPECT_FALSE(DelayModel::paperFrequency(Voltage::fromMillivolts(600)).has_value());
}

TEST(DelayModel, FrequencyMonotoneInVoltage) {
    const DelayModel model;
    double prev = 0.0;
    for (int mv = 350; mv <= 1100; mv += 25) {
        const double f = model.frequencyAt(Voltage::fromMillivolts(mv)).hertz();
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(DelayModel, NominalVoltageNearCortexA9Clock) {
    // Table I quotes 1.9GHz; the model reaches it near 0.95V nominal.
    const DelayModel model;
    EXPECT_NEAR(model.frequencyAt(Voltage::fromMillivolts(950)).megahertz(), 1900.0, 100.0);
}

TEST(DelayModel, Fo4ScalesWithPeriod) {
    const DelayModel model;
    const double fo4 = model.fo4DelaySeconds(760_mV);
    EXPECT_NEAR(fo4 * kFo4PerCycle, model.frequencyAt(760_mV).periodSeconds(), 1e-15);
}

// ---- CACTI-lite timing (Fig. 9) ----

TEST(CactiTiming, DataArrayRowToColumnMuxIs42Fo4) {
    const CacheOrganization org;
    const FfwTimeline t = CactiLite::ffwTimeline(org);
    EXPECT_NEAR(t.dataColumnMuxNeededFo4(), 42.2, 0.1);
}

TEST(CactiTiming, PatternPathsAre39Fo4) {
    const CacheOrganization org;
    const FfwTimeline t = CactiLite::ffwTimeline(org);
    EXPECT_NEAR(t.hitSignalReadyFo4(), 39.4, 0.1);
    EXPECT_NEAR(t.remappedOffsetReadyFo4(), 39.4, 0.1);
}

TEST(CactiTiming, FfwHasZeroLatencyOverhead) {
    // The paper's central timing claim: both FFW side paths beat the data
    // array's column-mux deadline, so FFW adds no cycles.
    const FfwTimeline t = CactiLite::ffwTimeline(CacheOrganization{});
    EXPECT_TRUE(t.zeroLatencyOverhead());
}

TEST(CactiTiming, BbrHasZeroLatencyOverhead) {
    const auto t = CactiLite::bbrTiming(CacheOrganization{});
    EXPECT_TRUE(t.zeroLatencyOverhead());
}

TEST(CactiTiming, All8TDataArrayBlowsTheSlack) {
    // Rationale for granting the 8T cache +1 cycle: its 30% larger cells
    // stretch the wordline/bitline wires past the 2-cycle envelope.
    CacheOrganization org8T;
    org8T.dataCell = SramCell::C8T;
    const ArrayTiming t6 = CactiLite::arrayTiming(org8T.dataArrayBits(), org8T.lines());
    const ArrayTiming t8 =
        CactiLite::arrayTiming(org8T.dataArrayBits(), org8T.lines(), SramCell::C8T);
    EXPECT_GT(t8.toColumnMuxFo4(), t6.toColumnMuxFo4() + 3.0);
}

TEST(CactiTiming, SmallerArraysAreFaster) {
    const ArrayTiming big = CactiLite::arrayTiming(262144, 1024);
    const ArrayTiming small = CactiLite::arrayTiming(8192, 256);
    EXPECT_LT(small.toColumnMuxFo4(), big.toColumnMuxFo4());
}

// ---- CACTI-lite area/leakage vs Table III ----

TEST(CactiArea, Robust8TCacheIs128Percent) {
    CacheOrganization org8T;
    org8T.dataCell = SramCell::C8T;
    org8T.tagCell = SramCell::C8T;
    const double ratio = CactiLite::estimate(org8T).totalArea() /
                         CactiLite::estimate(CacheOrganization{}).totalArea();
    EXPECT_NEAR(ratio, 1.280, 0.002);
}

TEST(CactiArea, FfwIs105Percent) {
    const auto rows = modelOverheads();
    for (const auto& row : rows) {
        if (row.scheme == "ffw") {
            EXPECT_NEAR(row.areaFactor, 1.052, 0.004);
            return;
        }
    }
    FAIL() << "ffw row missing";
}

class TableIIIModel : public ::testing::TestWithParam<int> {};

TEST_P(TableIIIModel, ModelTracksPaperWithin1p5Points) {
    const auto rows = modelOverheads();
    const auto& model = rows[static_cast<std::size_t>(GetParam())];
    const StaticOverhead& paper = paperOverhead(model.scheme);
    EXPECT_NEAR(model.areaFactor, paper.areaFactor, 0.015) << model.scheme;
    EXPECT_NEAR(model.staticPowerFactor, paper.staticPowerFactor, 0.015) << model.scheme;
    EXPECT_EQ(model.latencyCycles, paper.latencyCycles) << model.scheme;
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, TableIIIModel, ::testing::Range(0, 7));

TEST(TableIII, PaperValuesVerbatim) {
    EXPECT_NEAR(paperOverhead("8T").areaFactor, 1.280, 1e-9);
    EXPECT_NEAR(paperOverhead("ffw").staticPowerFactor, 1.064, 1e-9);
    EXPECT_NEAR(paperOverhead("bbr").areaFactor, 1.011, 1e-9);
    EXPECT_EQ(paperOverhead("simple-wdis").latencyCycles, 0u);
    EXPECT_EQ(paperOverhead("fba64").latencyCycles, 1u);
    EXPECT_THROW((void)paperOverhead("nonesuch"), std::out_of_range);
}

TEST(TableIII, CombinedL1StaticFactorIsMean) {
    const double combined = combinedL1StaticFactor("ffw", "bbr");
    EXPECT_NEAR(combined, (1.064 + 1.001) / 2.0, 1e-9);
}

TEST(CacheOrganization, DerivedGeometryTableI) {
    const CacheOrganization org;
    EXPECT_EQ(org.lines(), 1024u);
    EXPECT_EQ(org.sets(), 256u);
    EXPECT_EQ(org.wordsPerBlock(), 8u);
    EXPECT_EQ(org.totalWords(), 8192u);
    EXPECT_EQ(org.offsetBits(), 5u);
    EXPECT_EQ(org.indexBits(), 8u);
    EXPECT_EQ(org.tagBits(), 19u);
    EXPECT_EQ(org.dataArrayBits(), 262144u);
}

} // namespace
} // namespace voltcache
