// Tests for the CPU substrate: memory, branch prediction, functional
// execution, and the timing model's sensitivity to cache latency — the
// paper's central performance mechanism (Section VI-B).
#include <gtest/gtest.h>

#include <limits>

#include "cpu/branch_predictor.h"
#include "cpu/memory.h"
#include "cpu/simulator.h"
#include "isa/builder.h"
#include "linker/linker.h"
#include "schemes/conventional.h"

namespace voltcache {
namespace {

using namespace regs;

// ---- Memory ----

TEST(Memory, ReadWriteRoundTrip) {
    Memory memory;
    memory.write(0x1000, -123);
    EXPECT_EQ(memory.read(0x1000), -123);
    EXPECT_EQ(memory.read(0x2000), 0); // untouched reads as zero
}

TEST(Memory, MisalignedAccessFaults) {
    Memory memory;
    EXPECT_THROW(memory.write(0x1001, 1), MemoryFault);
    EXPECT_THROW((void)memory.read(0x1002), MemoryFault);
}

TEST(Memory, BulkLoad) {
    Memory memory;
    memory.load(0x100, {1, 2, 3});
    EXPECT_EQ(memory.read(0x100), 1);
    EXPECT_EQ(memory.read(0x108), 3);
}

TEST(Memory, SparsePagesAllocateOnDemand) {
    Memory memory;
    EXPECT_EQ(memory.pageCount(), 0u);
    memory.write(0x0, 1);
    memory.write(0x10000000, 2);
    EXPECT_EQ(memory.pageCount(), 2u);
}

// ---- Branch predictor ----

TEST(Predictor, LearnsAlwaysTakenLoop) {
    BranchPredictor predictor;
    const std::uint32_t pc = 0x100;
    const std::uint32_t target = 0x80;
    // Train.
    for (int i = 0; i < 4; ++i) {
        const auto prediction = predictor.predictBranch(pc);
        predictor.resolve(prediction, pc, true, target);
    }
    const auto prediction = predictor.predictBranch(pc);
    EXPECT_TRUE(prediction.taken);
    EXPECT_TRUE(prediction.targetKnown);
    EXPECT_EQ(prediction.target, target);
}

TEST(Predictor, LearnsNotTaken) {
    BranchPredictor predictor;
    const std::uint32_t pc = 0x200;
    for (int i = 0; i < 4; ++i) {
        const auto prediction = predictor.predictBranch(pc);
        predictor.resolve(prediction, pc, false, 0);
    }
    EXPECT_FALSE(predictor.predictBranch(pc).taken);
}

TEST(Predictor, RasPredictsReturns) {
    BranchPredictor predictor;
    predictor.pushReturnAddress(0x1234);
    const auto prediction = predictor.predictReturn(0x500);
    EXPECT_TRUE(prediction.targetKnown);
    EXPECT_EQ(prediction.target, 0x1234u);
}

TEST(Predictor, RasDepthBounded) {
    BranchPredictor::Config config;
    config.rasEntries = 2;
    BranchPredictor predictor(config);
    predictor.pushReturnAddress(0x10);
    predictor.pushReturnAddress(0x20);
    predictor.pushReturnAddress(0x30); // evicts 0x10
    EXPECT_EQ(predictor.predictReturn(0).target, 0x30u);
    EXPECT_EQ(predictor.predictReturn(0).target, 0x20u);
    EXPECT_FALSE(predictor.predictReturn(0).targetKnown); // RAS empty, BTB cold
}

TEST(Predictor, MispredictChargingOptional) {
    BranchPredictor predictor;
    const auto prediction = predictor.predictJump(0x10);
    predictor.resolve(prediction, 0x10, true, 0x40, /*chargeMispredict=*/false);
    EXPECT_EQ(predictor.stats().mispredicts, 0u);
    const auto second = predictor.predictBranch(0x20);
    predictor.resolve(second, 0x20, !second.taken, 0x40, /*chargeMispredict=*/true);
    EXPECT_EQ(predictor.stats().mispredicts, 1u);
}

// ---- Simulator: functional semantics ----

struct SimHarness {
    explicit SimHarness(const Module& module, std::uint32_t icacheOverhead = 0)
        : linked(link(module)),
          icache(CacheOrganization{}, l2, icacheOverhead),
          dcache(CacheOrganization{}, l2),
          sim(linked.image, module.data, icache, dcache) {}

    L2Cache l2;
    LinkOutput linked;
    ConventionalICache icache;
    ConventionalDCache dcache;
    Simulator sim;
};

TEST(Simulator, ArithmeticSemantics) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.li(r1, 7).li(r2, 3);
    f.mul(r3, r1, r2);  // 21
    f.div(r4, r1, r2);  // 2
    f.rem(r5, r1, r2);  // 1
    f.sub(r6, r1, r2);  // 4
    f.sll(r7, r2, r5);  // 6
    f.slt(r8, r2, r1);  // 1
    f.add(r1, r3, r4);
    f.add(r1, r1, r5);
    f.add(r1, r1, r6);
    f.add(r1, r1, r7);
    f.add(r1, r1, r8);  // 21+2+1+4+6+1 = 35
    f.halt();
    SimHarness h(mb.take());
    const auto stats = h.sim.run();
    EXPECT_TRUE(stats.halted);
    EXPECT_EQ(h.sim.reg(1), 35);
}

TEST(Simulator, DivisionEdgeCases) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.li(r1, 5).li(r2, 0);
    f.div(r3, r1, r2); // -1 by convention
    f.rem(r4, r1, r2); // dividend
    f.li(r5, std::numeric_limits<std::int32_t>::min()).li(r6, -1);
    f.div(r7, r5, r6); // INT_MIN
    f.rem(r8, r5, r6); // 0
    f.halt();
    SimHarness h(mb.take());
    (void)h.sim.run();
    EXPECT_EQ(h.sim.reg(3), -1);
    EXPECT_EQ(h.sim.reg(4), 5);
    EXPECT_EQ(h.sim.reg(7), std::numeric_limits<std::int32_t>::min());
    EXPECT_EQ(h.sim.reg(8), 0);
}

TEST(Simulator, ZeroRegisterIgnoresWrites) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.li(r0, 99).add(r1, r0, r0).halt();
    SimHarness h(mb.take());
    (void)h.sim.run();
    EXPECT_EQ(h.sim.reg(0), 0);
    EXPECT_EQ(h.sim.reg(1), 0);
}

TEST(Simulator, LoadStoreAndDataSegments) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.li(r2, 0x100000);
    f.lw(r1, r2, 0);     // from the data segment: 11
    f.addi(r1, r1, 5);
    f.sw(r1, r2, 4);
    f.lw(r3, r2, 4);     // read back 16
    f.add(r1, r1, r3);   // 32
    f.halt();
    mb.data(0x100000, {11, 0});
    SimHarness h(mb.take());
    (void)h.sim.run();
    EXPECT_EQ(h.sim.reg(1), 32);
    EXPECT_EQ(h.sim.memory().read(0x100004), 16);
}

TEST(Simulator, CallAndReturn) {
    ModuleBuilder mb;
    auto doubleIt = mb.function("double_it");
    doubleIt.add(r1, r1, r1).ret();
    auto f = mb.function("main");
    f.li(r1, 21).call("double_it").halt();
    mb.setEntry("main");
    SimHarness h(mb.take());
    const auto stats = h.sim.run();
    EXPECT_EQ(h.sim.reg(1), 42);
    EXPECT_TRUE(stats.halted);
}

TEST(Simulator, MaxInstructionsStopsEarly) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto loop = f.newBlock("loop");
    f.jmp(loop);
    f.at(loop).addi(r1, r1, 1).jmp(loop); // infinite
    const Module module = mb.take();
    const LinkOutput linked = link(module);
    L2Cache l2;
    ConventionalICache icache(CacheOrganization{}, l2);
    ConventionalDCache dcache(CacheOrganization{}, l2);
    PipelineConfig config;
    config.maxInstructions = 1000;
    Simulator sim(linked.image, module.data, icache, dcache, config);
    const auto stats = sim.run();
    EXPECT_FALSE(stats.halted);
    EXPECT_EQ(stats.instructions, 1000u);
}

TEST(Simulator, CountsEventClasses) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto loop = f.newBlock("loop");
    auto done = f.newBlock("done");
    f.li(r2, 10).li(r3, 0x100000);
    f.jmp(loop);
    f.at(loop);
    f.beq(r2, r0, done);
    f.lw(r4, r3, 0);
    f.sw(r4, r3, 4);
    f.addi(r2, r2, -1);
    f.jmp(loop);
    f.at(done).halt();
    SimHarness h(mb.take());
    const auto stats = h.sim.run();
    EXPECT_EQ(stats.loads, 10u);
    EXPECT_EQ(stats.stores, 10u);
    EXPECT_EQ(stats.condBranches, 11u);
    EXPECT_EQ(stats.takenBranches, 1u);
    EXPECT_EQ(stats.activity.l2WriteThroughs, 10u);
    EXPECT_GT(stats.activity.l1iAccesses, 0u);
}

// ---- Simulator: timing sensitivity ----

namespace {
Module loadUseChain(int n) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto loop = f.newBlock("loop");
    auto done = f.newBlock("done");
    f.li(r2, n).li(r3, 0x100000);
    f.sw(r3, r3, 0);
    f.jmp(loop);
    f.at(loop);
    f.beq(r2, r0, done);
    f.lw(r3, r3, 0);      // pointer-chasing load
    f.addi(r4, r3, 1);    // immediate use
    f.addi(r2, r2, -1);
    f.jmp(loop);
    f.at(done).halt();
    mb.data(0x100000, {0x100000});
    return mb.take();
}
} // namespace

TEST(Timing, LoadUseDependencyCostsL1Latency) {
    const Module chained = loadUseChain(1000);
    SimHarness h(chained);
    const auto stats = h.sim.run();
    // Each iteration pays the 2-cycle load-use delay: CPI well above the
    // 2-wide ideal of 0.5.
    EXPECT_GT(static_cast<double>(stats.cycles), 2.0 * 1000.0);
    EXPECT_GT(stats.dmemStallCycles, 500u);
}

TEST(Timing, ExtraICacheCycleSlowsExecution) {
    // The paper's key sensitivity: +1 cycle of L1 latency costs real time.
    const Module module = loadUseChain(2000);
    SimHarness fast(module, 0);
    SimHarness slow(module, 1);
    const auto fastStats = fast.sim.run();
    const auto slowStats = slow.sim.run();
    EXPECT_GT(slowStats.cycles, fastStats.cycles);
}

TEST(Timing, StallDecompositionCoversAllCycles) {
    const Module module = loadUseChain(500);
    SimHarness h(module);
    const auto stats = h.sim.run();
    const std::uint64_t total = stats.busyCycles() + stats.ifetchStallCycles +
                                stats.dmemStallCycles + stats.branchStallCycles +
                                stats.execStallCycles;
    EXPECT_EQ(total, stats.cycles);
}

namespace {
/// A hot loop (I-cache warm after the first iteration) whose body is either
/// fully independent ALU ops or one serial dependence chain.
Module aluLoop(bool independent, int iterations) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto loop = f.newBlock("loop");
    auto done = f.newBlock("done");
    f.li(r9, iterations);
    f.jmp(loop);
    f.at(loop);
    f.beq(r9, r0, done);
    for (int i = 0; i < 16; ++i) {
        if (independent) {
            f.addi(static_cast<Reg>(1 + (i % 8)), r0, i);
        } else {
            f.addi(r1, r1, 1);
        }
    }
    f.addi(r9, r9, -1);
    f.jmp(loop);
    f.at(done).halt();
    return mb.take();
}
} // namespace

TEST(Timing, IndependentAluDualIssues) {
    SimHarness h(aluLoop(true, 2000));
    const auto stats = h.sim.run();
    EXPECT_GT(stats.ipc(), 1.6);
}

TEST(Timing, DependentAluChainIsSerial) {
    SimHarness h(aluLoop(false, 2000));
    const auto stats = h.sim.run();
    // The 16-op serial chain dominates each 19-instruction iteration.
    EXPECT_LT(stats.ipc(), 1.25);
    EXPECT_GT(stats.ipc(), 0.8);
}

TEST(Timing, DualIssueBeatsSerialChain) {
    SimHarness independent(aluLoop(true, 2000));
    SimHarness serial(aluLoop(false, 2000));
    const auto a = independent.sim.run();
    const auto b = serial.sim.run();
    EXPECT_LT(a.cycles, b.cycles);
}

TEST(Timing, MispredictsInflateBranchStalls) {
    // A data-dependent unpredictable branch pattern (LCG parity).
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto loop = f.newBlock("loop");
    auto odd = f.newBlock("odd");
    auto even = f.newBlock("even");
    auto next = f.newBlock("next");
    auto done = f.newBlock("done");
    f.li(r2, 2000).li(r3, 12345);
    f.jmp(loop);
    f.at(loop);
    f.beq(r2, r0, done);
    f.ldlConst(r4, 1103515245);
    f.mul(r3, r3, r4);
    f.addi(r3, r3, 12345);
    f.srli(r5, r3, 16);
    f.andi(r5, r5, 1);
    f.bne(r5, r0, odd); // falls through to 'even'
    f.at(even);
    f.addi(r1, r1, 1);
    f.jmp(next);
    f.at(odd);
    f.addi(r1, r1, 2);
    f.jmp(next);
    f.at(next);
    f.addi(r2, r2, -1);
    f.jmp(loop);
    f.at(done).halt();
    SimHarness h(mb.take());
    const auto stats = h.sim.run();
    EXPECT_GT(stats.mispredicts, 400u); // ~50% of 2000 hard branches
    EXPECT_GT(stats.branchStallCycles, stats.mispredicts * 5);
}


TEST(Timing, ExtraDcacheCycleBubblesEveryLoad) {
    // The +1-cycle D-cache (8T-style) stalls the in-order pipe behind every
    // load, so a load-dense loop slows even without dependent consumers.
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto loop = f.newBlock("loop");
    auto done = f.newBlock("done");
    f.li(r9, 2000).li(r10, 0x100000);
    f.jmp(loop);
    f.at(loop);
    f.beq(r9, r0, done);
    f.lw(r1, r10, 0); // result never used
    f.lw(r2, r10, 4);
    f.addi(r9, r9, -1);
    f.jmp(loop);
    f.at(done).halt();
    const Module module = mb.take();
    const LinkOutput linked = link(module);

    auto cyclesWithOverhead = [&](std::uint32_t overhead) {
        L2Cache l2;
        ConventionalICache icache(CacheOrganization{}, l2);
        ConventionalDCache dcache(CacheOrganization{}, l2, overhead, "d");
        Simulator sim(linked.image, module.data, icache, dcache);
        return sim.run().cycles;
    };
    const auto base = cyclesWithOverhead(0);
    const auto slow = cyclesWithOverhead(1);
    // 4000 loads, each bubbling at least one extra cycle.
    EXPECT_GT(slow, base + 3000);
}

} // namespace
} // namespace voltcache
