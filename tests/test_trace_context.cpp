// Tests for the end-to-end job tracing plane (obs/trace_context.h) and the
// crash flight recorder (obs/flight_recorder.h): deterministic id
// derivation (a client-minted hex id re-parsed server-side must reproduce
// the identical span tree), the bounded JobTraceStore collector behind
// /trace/<job>, zero-cost rendering of cached legs, and the
// async-signal-safe dump path including the VC_CHECK contract hook — plus
// the headline guarantee that a fully traced sweep exports byte-identical
// JSON.
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/json_parse.h"
#include "core/report.h"
#include "core/sweep.h"
#include "obs/flight_recorder.h"
#include "obs/trace_context.h"
#include "power/dvfs.h"

namespace voltcache {
namespace {

using literals::operator""_mV;

std::string tempPath(const char* stem) {
    return testing::TempDir() + stem;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

// ---- id derivation ----

TEST(TraceContext, MintedIdsAreValidUniqueAndRoundTripThroughHex) {
    const obs::TraceContext a = obs::makeRootContext("job-a");
    const obs::TraceContext b = obs::makeRootContext("job-a"); // same label
    EXPECT_TRUE(a.valid());
    EXPECT_TRUE(b.valid());
    EXPECT_NE(a, b); // the process counter separates same-label mints

    const std::string hex = obs::traceIdHex(a);
    ASSERT_EQ(hex.size(), 32u);
    obs::TraceContext parsed;
    ASSERT_TRUE(obs::parseTraceIdHex(hex, parsed));
    EXPECT_EQ(parsed, a);
}

// The root span id must be a pure function of the 128-bit trace id: the
// client mints the context, the server re-parses only the hex id, and both
// must agree on every span id in the tree (they are derived from the root).
TEST(TraceContext, ClientAndServerDeriveTheSameSpanTree) {
    const obs::TraceContext client = obs::makeRootContext("submit");
    obs::TraceContext server;
    ASSERT_TRUE(obs::parseTraceIdHex(obs::traceIdHex(client), server));
    EXPECT_EQ(server.spanId, client.spanId);
    EXPECT_EQ(server.spanId, obs::rootSpanId(client));
    for (std::uint64_t leg = 0; leg < 8; ++leg) {
        EXPECT_EQ(obs::childSpanId(client, leg), obs::childSpanId(server, leg));
    }
}

TEST(TraceContext, ChildSpanIdsAreDeterministicAndDistinct) {
    const obs::TraceContext context = obs::makeRootContext("sweep");
    std::set<std::uint64_t> ids;
    for (std::uint64_t leg = 0; leg < 64; ++leg) {
        const std::uint64_t id = obs::childSpanId(context, leg);
        EXPECT_EQ(id, obs::childSpanId(context, leg)); // pure function
        EXPECT_NE(id, 0u);
        ids.insert(id);
    }
    EXPECT_EQ(ids.size(), 64u);
}

TEST(TraceContext, ParseRejectsMalformedIds) {
    obs::TraceContext context;
    EXPECT_FALSE(obs::parseTraceIdHex("", context));
    EXPECT_FALSE(obs::parseTraceIdHex("abc", context));
    EXPECT_FALSE(obs::parseTraceIdHex(std::string(31, 'a'), context));
    EXPECT_FALSE(obs::parseTraceIdHex(std::string(33, 'a'), context));
    EXPECT_FALSE(obs::parseTraceIdHex(std::string(16, 'a') + std::string(15, 'b') + "g",
                                      context));
    EXPECT_FALSE(obs::parseTraceIdHex(std::string(32, '0'), context)); // zero = off
    EXPECT_FALSE(context.valid()); // unmodified on every failure
}

// ---- JobTraceStore ----

TEST(JobTraceStore, CollectsSpansAndRendersChromeTraceJson) {
    obs::JobTraceStore& store = obs::JobTraceStore::global();
    store.clear();
    EXPECT_FALSE(obs::JobTraceStore::collecting());

    const obs::TraceContext context = obs::makeRootContext("job-1");
    store.beginJob("job-1", context);
    EXPECT_TRUE(obs::JobTraceStore::collecting());

    obs::JobSpan executed;
    executed.name = "leg";
    executed.spanId = obs::childSpanId(context, 0);
    executed.parentSpanId = context.spanId;
    executed.startNs = 1'000'000;
    executed.durationNs = 2'000'000;
    executed.leg = true;
    executed.benchmark = "crc32";
    executed.scheme = "ffw+bbr";
    executed.voltageMv = 400;
    store.record(context, executed);

    obs::JobSpan cached = executed;
    cached.spanId = obs::childSpanId(context, 1);
    cached.trial = 1;
    cached.cached = true;
    cached.durationNs = 5'000; // store-lookup wall time
    store.record(context, cached);

    store.endJob(context);
    EXPECT_FALSE(obs::JobTraceStore::collecting());

    // Queryable by label and by hex id, and both name the same document.
    const std::string byLabel = store.toChromeJson("job-1");
    const std::string byId = store.toChromeJson(obs::traceIdHex(context));
    ASSERT_FALSE(byLabel.empty());
    EXPECT_EQ(byLabel, byId);
    EXPECT_TRUE(store.toChromeJson("no-such-job").empty());

    const JsonValue doc = parseJson(byLabel);
    EXPECT_EQ(doc.stringOr("kind", ""), "trace");
    EXPECT_EQ(doc.stringOr("trace", ""), obs::traceIdHex(context));
    EXPECT_EQ(doc.numberOr("spanCount", 0.0), 2.0);
    const JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->items.size(), 2u);

    // The executed leg renders its real duration (µs); the cached leg is
    // zero-cost on the timeline with the wall time preserved in args.
    const JsonValue& hot = events->items[0];
    EXPECT_EQ(hot.numberOr("dur", 0.0), 2000.0);
    const JsonValue& hit = events->items[1];
    EXPECT_EQ(hit.numberOr("dur", -1.0), 0.0);
    EXPECT_EQ(hit.stringOr("cat", ""), "leg,cached");
    const JsonValue* args = hit.find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_EQ(args->numberOr("wallNs", 0.0), 5000.0);
    const JsonValue* isCached = args->find("cached");
    ASSERT_NE(isCached, nullptr);
    EXPECT_TRUE(isCached->asBool());

    store.clear();
}

TEST(JobTraceStore, RecordCurrentAttributesToTheScopedContext) {
    obs::JobTraceStore& store = obs::JobTraceStore::global();
    store.clear();
    const obs::TraceContext context = obs::makeRootContext("scoped");
    store.beginJob("scoped", context);
    {
        const obs::ScopedTraceContext scope(context);
        store.recordCurrent("reduce", 10, 20);
    }
    // Outside the scope the current context is empty again: dropped.
    store.recordCurrent("orphan", 30, 40);
    store.endJob(context);

    const JsonValue doc = parseJson(store.toChromeJson("scoped"));
    EXPECT_EQ(doc.numberOr("spanCount", 0.0), 1.0);
    const JsonValue* events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->items.size(), 1u);
    EXPECT_EQ(events->items[0].stringOr("name", ""), "reduce");
    EXPECT_EQ(events->items[0].stringOr("cat", ""), "phase");
    store.clear();
}

TEST(JobTraceStore, BoundsJobsAndSpansWithDropAccounting) {
    obs::JobTraceStore& store = obs::JobTraceStore::global();
    store.clear();

    // One job past the cap: the oldest is evicted, newest survive.
    std::vector<obs::TraceContext> contexts;
    for (std::size_t i = 0; i <= obs::JobTraceStore::kMaxJobs; ++i) {
        const obs::TraceContext context =
            obs::makeRootContext("bulk-" + std::to_string(i));
        contexts.push_back(context);
        store.beginJob("bulk-" + std::to_string(i), context);
        store.endJob(context);
    }
    EXPECT_TRUE(store.toChromeJson("bulk-0").empty());
    EXPECT_FALSE(store.toChromeJson("bulk-1").empty());

    // Per-job span cap: overflow is counted, not stored.
    const obs::TraceContext context = obs::makeRootContext("fat");
    store.beginJob("fat", context);
    const std::uint64_t droppedBefore = store.dropped();
    for (std::size_t i = 0; i < obs::JobTraceStore::kMaxSpansPerJob + 10; ++i) {
        obs::JobSpan span;
        span.name = "leg";
        store.record(context, span);
    }
    store.endJob(context);
    EXPECT_EQ(store.dropped(), droppedBefore + 10);
    const JsonValue doc = parseJson(store.toChromeJson("fat"));
    EXPECT_EQ(doc.numberOr("spanCount", 0.0),
              static_cast<double>(obs::JobTraceStore::kMaxSpansPerJob));
    EXPECT_EQ(doc.numberOr("droppedSpans", 0.0), 10.0);

    // The index lists newest first.
    const JsonValue index = parseJson(store.indexJson());
    const JsonValue* jobs = index.find("jobs");
    ASSERT_NE(jobs, nullptr);
    ASSERT_FALSE(jobs->items.empty());
    EXPECT_EQ(jobs->items[0].stringOr("job", ""), "fat");
    store.clear();
}

// ---- a real traced sweep ----

TEST(TracedSweep, CollectsOneSpanPerLegAndExportsByteIdenticalJson) {
    SweepConfig plain;
    plain.benchmarks = {"crc32"};
    plain.schemes = {SchemeKind::SimpleWordDisable, SchemeKind::FfwBbr};
    plain.points = {DvfsTable::at(560_mV), DvfsTable::at(400_mV)};
    plain.trials = 2;
    plain.scale = WorkloadScale::Tiny;
    plain.threads = 2;

    SweepExportMeta meta;
    meta.version = "trace-test";
    meta.trials = plain.trials;
    meta.scale = "tiny";
    meta.benchmarks = plain.benchmarks;
    const std::string referenceJson = sweepResultToJson(runSweep(plain), meta);

    obs::JobTraceStore& store = obs::JobTraceStore::global();
    store.clear();
    SweepConfig traced = plain;
    traced.trace = obs::makeRootContext("sweep-test");
    std::size_t finishedLegs = 0;
    std::uint64_t wrongSpanIds = 0;
    traced.onLegEvent = [&](const SweepLegEvent& event) {
        if (event.phase != SweepLegEvent::Phase::Finished) return;
        ++finishedLegs;
        // Every event carries the owning trace and its deterministic span.
        if (event.traceHi != traced.trace.traceHi ||
            event.traceLo != traced.trace.traceLo ||
            event.spanId != obs::childSpanId(traced.trace, event.leg)) {
            ++wrongSpanIds;
        }
    };
    store.beginJob("sweep-test", traced.trace);
    const SweepResult result = runSweep(traced);
    store.endJob(traced.trace);

    EXPECT_GT(finishedLegs, 0u);
    EXPECT_EQ(wrongSpanIds, 0u);
    const JsonValue doc = parseJson(store.toChromeJson("sweep-test"));
    EXPECT_GE(doc.numberOr("spanCount", 0.0), static_cast<double>(finishedLegs));

    // Tracing observed every leg yet the export did not move a byte.
    EXPECT_EQ(sweepResultToJson(result, meta), referenceJson);
    store.clear();
}

// ---- flight recorder ----

TEST(FlightRecorder, DumpsParseableJsonOnceAndRearms) {
    const std::string path = tempPath("flight_basic.json");
    obs::FlightRecorder::Options options;
    options.path = path;
    options.eventCapacity = 8;
    obs::FlightRecorder& recorder = obs::FlightRecorder::install(options);
    EXPECT_TRUE(obs::flightRecorderArmed());
    EXPECT_EQ(obs::FlightRecorder::instance(), &recorder);

    const obs::TraceContext context = obs::makeRootContext("flight-job");
    recorder.noteJob("flight-job", context);
    obs::FlightProgress progress;
    progress.legsCompleted = 3;
    progress.legsTotal = 12;
    progress.workers = 2;
    recorder.noteProgress(progress);
    recorder.noteMetrics();
    for (std::uint32_t i = 0; i < 12; ++i) { // > capacity: ring wraps
        obs::JournalEvent event;
        event.phase = obs::JournalEvent::Phase::Finished;
        event.leg = i;
        event.setBenchmark("crc32");
        event.setScheme("ffw+bbr");
        event.voltageMv = 400;
        event.durationNs = 1000 + i;
        recorder.noteLegEvent(event);
    }
    EXPECT_EQ(recorder.eventsNoted(), 12u);

    ASSERT_TRUE(recorder.dumpNow("test", "unit"));
    EXPECT_FALSE(recorder.dumpNow("test", "second")); // dump-once until rearm

    const JsonValue doc = parseJson(slurp(path));
    EXPECT_EQ(doc.stringOr("kind", ""), "flight");
    EXPECT_EQ(doc.stringOr("reason", ""), "test");
    EXPECT_EQ(doc.stringOr("detail", ""), "unit");
    EXPECT_EQ(doc.stringOr("job", ""), "flight-job");
    EXPECT_EQ(doc.stringOr("trace", ""), obs::traceIdHex(context));
    const JsonValue* dumpedProgress = doc.find("progress");
    ASSERT_NE(dumpedProgress, nullptr);
    EXPECT_EQ(dumpedProgress->numberOr("legsCompleted", 0.0), 3.0);
    EXPECT_EQ(dumpedProgress->numberOr("legsTotal", 0.0), 12.0);
    // The ring kept the newest 8 of 12 events, oldest-first.
    EXPECT_EQ(doc.numberOr("eventsNoted", 0.0), 12.0);
    EXPECT_EQ(doc.numberOr("eventsDropped", 0.0), 4.0);
    const JsonValue* events = doc.find("events");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->items.size(), 8u);
    EXPECT_EQ(events->items.front().numberOr("leg", 0.0), 4.0);
    EXPECT_EQ(events->items.back().numberOr("leg", 0.0), 11.0);
    EXPECT_EQ(events->items.back().stringOr("outcome", ""), "ok");

    // rearm() re-enables the dump; the file is rewritten from the start.
    recorder.rearm();
    ASSERT_TRUE(recorder.dumpNow("again"));
    const JsonValue redump = parseJson(slurp(path));
    EXPECT_EQ(redump.stringOr("reason", ""), "again");
    std::remove(path.c_str());
}

TEST(FlightRecorder, ContractFailureDumpsAtTheFailureSite) {
    const std::string path = tempPath("flight_contract.json");
    obs::FlightRecorder::Options options;
    options.path = path;
    obs::FlightRecorder& recorder = obs::FlightRecorder::install(options);
    recorder.rearm();

    // VC_CHECK fires the hook at the failure site, then throws as usual.
    EXPECT_THROW(VC_CHECK(1 + 1 == 3), ContractViolation);

    const JsonValue doc = parseJson(slurp(path));
    EXPECT_EQ(doc.stringOr("kind", ""), "flight");
    EXPECT_EQ(doc.stringOr("reason", ""), "Check");
    EXPECT_NE(doc.stringOr("detail", "").find("1 + 1 == 3"), std::string::npos);
    EXPECT_NE(doc.stringOr("detail", "").find("test_trace_context.cpp"),
              std::string::npos);
    std::remove(path.c_str());
}

// A sweep with the recorder armed (and a deliberate mid-sweep contract
// failure) must leave a parseable dump naming the failing leg's check, while
// the sweep itself fails loudly — the executor rethrows the leg error.
TEST(FlightRecorder, InducedLegFailureLeavesADumpAndFailsTheSweep) {
    const std::string path = tempPath("flight_sweep.json");
    obs::FlightRecorder::Options options;
    options.path = path;
    obs::FlightRecorder& recorder = obs::FlightRecorder::install(options);
    recorder.rearm();

    SweepConfig config;
    config.benchmarks = {"crc32"};
    config.schemes = {SchemeKind::SimpleWordDisable, SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(560_mV)};
    config.trials = 1;
    config.scale = WorkloadScale::Tiny;
    config.threads = 1;
    config.failAtLeg = 2; // 1-based: the second leg trips VC_CHECK
    config.onLegEvent = [&recorder](const SweepLegEvent& event) {
        obs::JournalEvent line;
        line.leg = static_cast<std::uint32_t>(event.leg);
        line.setBenchmark(event.benchmark);
        recorder.noteLegEvent(line);
    };

    EXPECT_THROW((void)runSweep(config), ContractViolation);

    const JsonValue doc = parseJson(slurp(path));
    EXPECT_EQ(doc.stringOr("kind", ""), "flight");
    EXPECT_EQ(doc.stringOr("reason", ""), "Check");
    EXPECT_NE(doc.stringOr("detail", "").find("failAtLeg"), std::string::npos);
    const JsonValue* events = doc.find("events");
    ASSERT_NE(events, nullptr);
    EXPECT_FALSE(events->items.empty());
    std::remove(path.c_str());
}

} // namespace
} // namespace voltcache
