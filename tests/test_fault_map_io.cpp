// Tests for the fault-map storage format (the off-chip fault maps of paper
// Section IV): round trips, format anatomy, and rejection of every class of
// malformed input.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "faults/fault_map_io.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

TEST(FaultMapIo, RoundTripSmall) {
    FaultMap map(4, 8);
    map.setFaulty(0, 0);
    map.setFaulty(3, 7);
    const FaultMap loaded = faultMapFromString(faultMapToString(map));
    EXPECT_EQ(loaded, map);
}

TEST(FaultMapIo, RoundTripMonteCarloMaps) {
    const FaultMapGenerator generator;
    Rng rng(404);
    for (int trial = 0; trial < 5; ++trial) {
        const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
        const FaultMap loaded = faultMapFromString(faultMapToString(map));
        EXPECT_EQ(loaded, map) << "trial " << trial;
    }
}

TEST(FaultMapIo, FormatAnatomy) {
    FaultMap map(2, 4);
    map.setFaulty(1, 2);
    const std::string text = faultMapToString(map);
    EXPECT_EQ(text,
              "voltcache-faultmap v1\n"
              "lines 2 words 4\n"
              "....\n"
              "..X.\n");
}

TEST(FaultMapIo, RejectsMissingHeader) {
    EXPECT_THROW((void)faultMapFromString("lines 2 words 4\n....\n....\n"),
                 FaultMapFormatError);
}

TEST(FaultMapIo, RejectsBadDimensions) {
    EXPECT_THROW((void)faultMapFromString("voltcache-faultmap v1\nrows 2 cols 4\n"),
                 FaultMapFormatError);
    EXPECT_THROW((void)faultMapFromString("voltcache-faultmap v1\nlines 0 words 4\n"),
                 FaultMapFormatError);
    EXPECT_THROW((void)faultMapFromString("voltcache-faultmap v1\nlines 2 words 64\n"),
                 FaultMapFormatError);
}

TEST(FaultMapIo, RejectsTruncatedRows) {
    EXPECT_THROW(
        (void)faultMapFromString("voltcache-faultmap v1\nlines 2 words 4\n....\n"),
        FaultMapFormatError);
}

TEST(FaultMapIo, RejectsWrongRowWidth) {
    EXPECT_THROW(
        (void)faultMapFromString("voltcache-faultmap v1\nlines 1 words 4\n.....\n"),
        FaultMapFormatError);
}

TEST(FaultMapIo, RejectsUnknownCharacters) {
    EXPECT_THROW(
        (void)faultMapFromString("voltcache-faultmap v1\nlines 1 words 4\n..?.\n"),
        FaultMapFormatError);
}

} // namespace
} // namespace voltcache
