// Tests for the DVFS table and the energy model's scaling laws
// (paper Table II and Section VI-C assumptions).
#include <gtest/gtest.h>

#include "common/contracts.h"
#include "power/dvfs.h"
#include "power/energy_model.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

TEST(Dvfs, TableIIRowCountAndOrder) {
    const auto points = DvfsTable::paperPoints();
    ASSERT_EQ(points.size(), 6u);
    EXPECT_DOUBLE_EQ(points.front().voltage.millivolts(), 760.0);
    EXPECT_DOUBLE_EQ(points.back().voltage.millivolts(), 400.0);
    for (std::size_t i = 1; i < points.size(); ++i) {
        EXPECT_LT(points[i].voltage, points[i - 1].voltage);
        EXPECT_LT(points[i].frequency, points[i - 1].frequency);
        EXPECT_GT(points[i].pFailBit, points[i - 1].pFailBit);
    }
}

TEST(Dvfs, LowVoltageSubsetExcludesBaseline) {
    const auto low = DvfsTable::lowVoltagePoints();
    ASSERT_EQ(low.size(), 5u);
    EXPECT_DOUBLE_EQ(low.front().voltage.millivolts(), 560.0);
}

TEST(Dvfs, LookupByVoltage) {
    EXPECT_DOUBLE_EQ(DvfsTable::at(480_mV).frequency.megahertz(), 818.0);
    EXPECT_NEAR(DvfsTable::at(480_mV).pFailBit, 1e-3, 1e-12);
    EXPECT_THROW((void)DvfsTable::at(Voltage::fromMillivolts(600)), std::out_of_range);
}

TEST(Dvfs, PFailMatchesFailureModel) {
    const FailureModel model;
    for (const auto& point : DvfsTable::lowVoltagePoints()) {
        EXPECT_NEAR(model.pFailBit(point.voltage) / point.pFailBit, 1.0, 1e-6)
            << point.voltage.millivolts() << "mV";
    }
}

namespace {
ActivityCounts simpleActivity() {
    ActivityCounts activity;
    activity.instructions = 1000000;
    activity.cycles = 1000000;
    activity.l1iAccesses = 200000;
    activity.l1dAccesses = 300000;
    activity.l2Accesses = 5000;
    activity.l2WriteThroughs = 100000;
    activity.dramAccesses = 100;
    return activity;
}
} // namespace

TEST(EnergyModel, DynamicEnergyScalesQuadratically) {
    const EnergyModel model;
    const auto activity = simpleActivity();
    const auto e760 = model.energyOf(activity, DvfsTable::at(760_mV));
    const auto e400 = model.energyOf(activity, DvfsTable::at(400_mV));
    const double expected = (0.4 / 0.76) * (0.4 / 0.76);
    EXPECT_NEAR(e400.coreDynamic / e760.coreDynamic, expected, 1e-9);
    EXPECT_NEAR(e400.l1Dynamic / e760.l1Dynamic, expected, 1e-9);
}

TEST(EnergyModel, L2EnergyDoesNotScaleWithCoreVoltage) {
    const EnergyModel model;
    const auto activity = simpleActivity();
    const auto e760 = model.energyOf(activity, DvfsTable::at(760_mV));
    const auto e400 = model.energyOf(activity, DvfsTable::at(400_mV));
    EXPECT_DOUBLE_EQ(e400.l2Dynamic, e760.l2Dynamic);
    EXPECT_DOUBLE_EQ(e400.dramDynamic, e760.dramDynamic);
}

TEST(EnergyModel, StaticEnergyScalesWithVoltageAndTime) {
    const EnergyModel model;
    const auto activity = simpleActivity();
    const auto e760 = model.energyOf(activity, DvfsTable::at(760_mV));
    const auto e400 = model.energyOf(activity, DvfsTable::at(400_mV));
    // Same cycle count, lower frequency => longer runtime; static power on
    // the scaled rail also drops with V.
    const double timeRatio = DvfsTable::at(760_mV).frequency.hertz() /
                             DvfsTable::at(400_mV).frequency.hertz();
    const double vRatio = 0.4 / 0.76;
    EXPECT_NEAR(e400.coreL1Static / e760.coreL1Static, timeRatio * vRatio, 1e-9);
    EXPECT_NEAR(e400.l2Static / e760.l2Static, timeRatio, 1e-9);
}

TEST(EnergyModel, L1StaticFactorAppliesOnlyToL1Share) {
    const EnergyModel model;
    const auto activity = simpleActivity();
    const auto base = model.energyOf(activity, DvfsTable::at(400_mV), 1.0);
    const auto boosted = model.energyOf(activity, DvfsTable::at(400_mV), 2.0);
    const double expected =
        1.0 + EnergyModel::kL1StaticShare; // (1-s) + s*2 relative growth
    EXPECT_NEAR(boosted.coreL1Static / base.coreL1Static, expected, 1e-9);
    EXPECT_DOUBLE_EQ(boosted.coreDynamic, base.coreDynamic);
}

TEST(EnergyModel, EpiIsTotalOverInstructions) {
    const EnergyModel model;
    const auto activity = simpleActivity();
    const auto op = DvfsTable::at(560_mV);
    EXPECT_NEAR(model.epi(activity, op),
                model.energyOf(activity, op).total() / 1e6, 1e-18);
}

TEST(EnergyModel, WriteThroughCheaperThanDemandRead) {
    const EnergyModel model;
    ActivityCounts reads;
    reads.instructions = 1000;
    reads.cycles = 1000;
    reads.l2Accesses = 1000;
    ActivityCounts writes;
    writes.instructions = 1000;
    writes.cycles = 1000;
    writes.l2WriteThroughs = 1000;
    const auto op = DvfsTable::at(760_mV);
    EXPECT_GT(model.energyOf(reads, op).l2Dynamic, model.energyOf(writes, op).l2Dynamic);
}

TEST(EnergyModel, RejectsZeroInstructions) {
    const EnergyModel model;
    ActivityCounts activity;
    activity.cycles = 10;
    EXPECT_THROW((void)model.energyOf(activity, DvfsTable::at(760_mV)),
                 ContractViolation);
}

} // namespace
} // namespace voltcache
