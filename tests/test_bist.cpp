// Tests for the BIST substrate: the defective SRAM array behaviour and the
// March C- discovery of injected stuck-at faults (paper Section IV, [23]).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "faults/bist.h"

namespace voltcache {
namespace {

TEST(DefectiveSram, ReadBackWithoutDefects) {
    DefectiveSramArray array(4, 8);
    array.write(5, 0xDEADBEEF);
    EXPECT_EQ(array.read(5), 0xDEADBEEFu);
    EXPECT_EQ(array.read(6), 0u);
}

TEST(DefectiveSram, StuckAtOneForcesBit) {
    DefectiveSramArray array(1, 8);
    array.injectStuckAt(0, 3, true);
    array.write(0, 0x0);
    EXPECT_EQ(array.read(0), 0x8u);
    array.write(0, 0xFFFFFFFF);
    EXPECT_EQ(array.read(0), 0xFFFFFFFFu);
}

TEST(DefectiveSram, StuckAtZeroForcesBit) {
    DefectiveSramArray array(1, 8);
    array.injectStuckAt(0, 0, false);
    array.write(0, 0xFFFFFFFF);
    EXPECT_EQ(array.read(0), 0xFFFFFFFEu);
}

TEST(DefectiveSram, NarrowWordsMasked) {
    DefectiveSramArray array(1, 4, 8); // 8-bit words
    array.write(0, 0xFFF);
    EXPECT_EQ(array.read(0), 0xFFu);
}

TEST(DefectiveSram, GroundTruthMatchesInjection) {
    DefectiveSramArray array(4, 8);
    array.injectStuckAt(7, 0, true);
    array.injectStuckAt(7, 5, false); // two defects, same word
    array.injectStuckAt(20, 31, true);
    const FaultMap truth = array.groundTruthWordFaults();
    EXPECT_EQ(truth.totalFaultyWords(), 2u);
    EXPECT_TRUE(truth.isFaultyFlat(7));
    EXPECT_TRUE(truth.isFaultyFlat(20));
}

TEST(Bist, CleanArrayYieldsCleanMap) {
    DefectiveSramArray array(16, 8);
    const auto result = Bist::run(array);
    EXPECT_TRUE(result.map.clean());
    EXPECT_GT(result.reads, 0u);
    EXPECT_GT(result.writes, 0u);
}

TEST(Bist, FindsSingleStuckAtOne) {
    DefectiveSramArray array(16, 8);
    array.injectStuckAt(42, 17, true);
    const auto result = Bist::run(array);
    EXPECT_EQ(result.map.totalFaultyWords(), 1u);
    EXPECT_TRUE(result.map.isFaultyFlat(42));
}

TEST(Bist, FindsSingleStuckAtZero) {
    DefectiveSramArray array(16, 8);
    array.injectStuckAt(100, 0, false);
    const auto result = Bist::run(array);
    EXPECT_EQ(result.map.totalFaultyWords(), 1u);
    EXPECT_TRUE(result.map.isFaultyFlat(100));
}

/// Property: for any random stuck-at defect population, the BIST map equals
/// the ground truth exactly (stuck-at coverage of March C- is complete).
class BistCoverage : public ::testing::TestWithParam<double> {};

TEST_P(BistCoverage, MapEqualsGroundTruth) {
    const double pBit = GetParam();
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed);
        DefectiveSramArray array(64, 8);
        array.injectRandomDefects(rng, pBit);
        const auto result = Bist::run(array);
        EXPECT_EQ(result.map, array.groundTruthWordFaults()) << "seed " << seed;
    }
}

INSTANTIATE_TEST_SUITE_P(DefectDensities, BistCoverage,
                         ::testing::Values(1e-4, 1e-3, 1e-2, 5e-2));

TEST(Bist, EndToEndMatchesGeneratorStatistics) {
    // BIST over a random-defect array should report a word-fault rate close
    // to 1-(1-p)^32 — the same quantity FaultMapGenerator samples directly.
    Rng rng(77);
    DefectiveSramArray array(1024, 8);
    const double pBit = 1e-2;
    array.injectRandomDefects(rng, pBit);
    const auto result = Bist::run(array);
    const double observed = static_cast<double>(result.map.totalFaultyWords()) /
                            static_cast<double>(result.map.totalWords());
    const double expected = 1.0 - std::pow(1.0 - pBit, 32);
    EXPECT_NEAR(observed, expected, 0.02);
}

} // namespace
} // namespace voltcache
