// Tests for the linker: conventional layout, relocation resolution, and the
// BBR first-fit placement of Algorithm 1.
#include <gtest/gtest.h>

#include "analysis/placement_prover.h"
#include "compiler/passes.h"
#include "cpu/simulator.h"
#include "faults/fault_map.h"
#include "isa/builder.h"
#include "linker/linker.h"
#include "schemes/conventional.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using namespace regs;
using voltcache::literals::operator""_mV;

Module tinyProgram() {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto loop = f.newBlock("loop");
    auto done = f.newBlock("done");
    f.li(r1, 0);
    f.li(r2, 5);
    f.jmp(loop);
    f.at(loop);
    f.beq(r2, r0, done);
    f.add(r1, r1, r2);
    f.addi(r2, r2, -1);
    f.jmp(loop);
    f.at(done);
    f.halt();
    return mb.take();
}

std::int32_t executeImage(const Image& image, const Module& module) {
    L2Cache l2;
    CacheOrganization org;
    ConventionalICache icache(org, l2);
    ConventionalDCache dcache(org, l2);
    Simulator sim(image, module.data, icache, dcache);
    const RunStats stats = sim.run();
    EXPECT_TRUE(stats.halted);
    return sim.reg(1);
}

TEST(Linker, ConventionalLayoutIsContiguous) {
    const Module module = tinyProgram();
    const LinkOutput out = link(module);
    EXPECT_EQ(out.stats.gapWords, 0u);
    EXPECT_EQ(out.stats.imageWords, out.stats.codeWords);
    // Blocks appear back to back in layout order.
    std::uint32_t expected = out.image.baseAddr();
    for (const auto& placement : out.image.placements()) {
        EXPECT_EQ(placement.byteAddr, expected);
        expected += placement.sizeWords() * 4;
    }
}

TEST(Linker, BranchDisplacementsResolve) {
    const Module module = tinyProgram();
    const LinkOutput out = link(module);
    EXPECT_EQ(executeImage(out.image, module), 15); // 5+4+3+2+1
}

TEST(Linker, EntryAddressPointsAtMain) {
    ModuleBuilder mb;
    auto helper = mb.function("helper");
    helper.ret();
    auto f = mb.function("main");
    f.halt();
    mb.setEntry("main");
    const Module module = mb.take();
    const LinkOutput out = link(module);
    // main was emitted second: entry must not be the image base.
    EXPECT_NE(out.image.entryAddr(), out.image.baseAddr());
    EXPECT_EQ(out.image.fetch(out.image.entryAddr()).op, Opcode::Halt);
}

TEST(Linker, CodeBaseRespected) {
    const Module module = tinyProgram();
    LinkOptions options;
    options.codeBase = 0x4000;
    const LinkOutput out = link(module, options);
    EXPECT_EQ(out.image.baseAddr(), 0x4000u);
    EXPECT_EQ(executeImage(out.image, module), 15);
}

TEST(Linker, SharedPoolPlacedAfterFunction) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.ldlConst(r1, 99999999).halt();
    const Module module = mb.take();
    const LinkOutput out = link(module);
    // Image = [ldl, halt, literal]
    EXPECT_EQ(out.stats.imageWords, 3u);
    EXPECT_EQ(out.image.at(out.image.baseAddr() + 8).kind, ImageWord::Kind::Literal);
    EXPECT_EQ(out.image.at(out.image.baseAddr() + 8).value, 99999999);
    EXPECT_EQ(executeImage(out.image, module), 99999999);
}

TEST(Linker, FallthroughPastLastBlockRejected) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.addi(r1, r0, 1); // no terminator
    Module module = mb.take();
    EXPECT_THROW((void)link(module), LinkError);
}

TEST(Linker, BbrWithoutMapRejected) {
    const Module module = tinyProgram();
    LinkOptions options;
    options.bbrPlacement = true;
    EXPECT_THROW((void)link(module, options), LinkError);
}

TEST(Linker, BbrOnUntransformedFallthroughRejected) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto next = f.newBlock("next");
    f.addi(r1, r0, 1); // falls through
    f.at(next).halt();
    const Module module = mb.take();
    FaultMap map(1024, 8);
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    EXPECT_THROW((void)link(module, options), LinkError);
}

TEST(Linker, BbrSkipsFaultyWords) {
    Module module = tinyProgram();
    applyBbrTransforms(module);
    FaultMap map(1024, 8);
    // Poison the first words so the entry block must move.
    for (std::uint32_t w = 0; w < 4; ++w) map.setFaultyFlat(w);
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    const LinkOutput out = link(module, options);
    EXPECT_GE(out.image.placements().front().byteAddr, 4u * 4u);
    EXPECT_GT(out.stats.gapWords, 0u);
    EXPECT_EQ(countPlacementViolations(out.image, map), 0u);
    EXPECT_EQ(executeImage(out.image, module), 15);
}

TEST(Linker, BbrUnplaceableBlockFailsLoudly) {
    Module module = tinyProgram();
    applyBbrTransforms(module);
    FaultMap map(1024, 8);
    // Leave only isolated single fault-free words: nothing >= 2 words fits.
    for (std::uint32_t w = 0; w < map.totalWords(); w += 2) map.setFaultyFlat(w);
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    EXPECT_THROW((void)link(module, options), LinkError);
}

TEST(Linker, BbrBlockLargerThanCacheRejected) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    for (int i = 0; i < 40; ++i) f.addi(r1, r1, 1);
    f.halt();
    Module module = mb.take(); // one 41-word block, untransformed
    FaultMap map(4, 8);        // a 32-word "cache"
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    EXPECT_THROW((void)link(module, options), LinkError);
}

TEST(Linker, LiteralReachEnforced) {
    // A shared pool placed beyond the 4KB page reach must be diagnosed.
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.ldlConst(r1, 424242);
    for (int i = 0; i < 1100; ++i) f.addi(r2, r2, 1); // push pool out of reach
    f.halt();
    const Module module = mb.take();
    EXPECT_THROW((void)link(module), LinkError);
}

TEST(Linker, BbrTransformsRestoreLiteralReach) {
    // The same out-of-reach program becomes linkable once the full BBR
    // pipeline moves the pool into the block and splits the giant block so
    // the literal sits next to its Ldl.
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.ldlConst(r1, 424242);
    for (int i = 0; i < 1100; ++i) f.addi(r2, r2, 1);
    f.halt();
    Module module = mb.take();
    applyBbrTransforms(module);
    const LinkOutput out = link(module);
    EXPECT_EQ(executeImage(out.image, module), 424242);
}

TEST(Linker, PlacementVerifierCountsViolations) {
    const Module module = tinyProgram();
    const LinkOutput out = link(module); // conventional: starts at word 0
    FaultMap map(1024, 8);
    map.setFaultyFlat(0); // first word of the image is now "faulty"
    EXPECT_EQ(countPlacementViolations(out.image, map), 1u);
}

/// Property: BBR placement never violates the fault map, for random maps at
/// the paper's worst operating point, across all benchmarks.
class BbrPlacementProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BbrPlacementProperty, NoViolationsAt400mV) {
    const FaultMapGenerator generator;
    Rng rng(GetParam());
    const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
    for (const auto& info : benchmarkList()) {
        Module module = buildBenchmark(info.name, WorkloadScale::Tiny);
        applyBbrTransforms(module);
        LinkOptions options;
        options.bbrPlacement = true;
        options.icacheFaultMap = &map;
        try {
            const LinkOutput out = link(module, options);
            EXPECT_EQ(countPlacementViolations(out.image, map), 0u) << info.name;
            // The static prover decides the same invariant over the image
            // CFG — strictly stronger diagnostics than the word counter.
            const auto proof = analysis::provePlacement(out.image, map, &module);
            EXPECT_TRUE(proof.verified) << info.name << ":\n"
                                        << analysis::formatProof(proof);
            EXPECT_GT(out.stats.gapWords, 0u) << info.name;
        } catch (const LinkError&) {
            // A genuinely unplaceable map is a yield loss, not a bug.
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BbrPlacementProperty, ::testing::Values(1, 2, 3, 4, 5));

} // namespace
} // namespace voltcache
