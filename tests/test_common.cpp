// Unit tests for the common utilities: RNG, statistics, histograms, tables,
// units, and contract checks.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/contracts.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
    Rng rng(99);
    for (int i = 0; i < 10000; ++i) {
        const double x = rng.nextDouble();
        EXPECT_GE(x, 0.0);
        EXPECT_LT(x, 1.0);
    }
}

TEST(Rng, NextDoubleMeanNearHalf) {
    Rng rng(7);
    double sum = 0.0;
    constexpr int kSamples = 100000;
    for (int i = 0; i < kSamples; ++i) sum += rng.nextDouble();
    EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.nextBelow(17), 17u);
}

TEST(Rng, NextBelowCoversAllResidues) {
    Rng rng(5);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.nextBelow(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextInRangeInclusive) {
    Rng rng(11);
    bool sawLo = false;
    bool sawHi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto x = rng.nextInRange(-3, 3);
        EXPECT_GE(x, -3);
        EXPECT_LE(x, 3);
        sawLo |= (x == -3);
        sawHi |= (x == 3);
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
    Rng rng(13);
    int hits = 0;
    constexpr int kSamples = 200000;
    for (int i = 0; i < kSamples; ++i) hits += rng.nextBernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(Rng, ForkedStreamsAreIndependent) {
    Rng parent(42);
    Rng childA = parent.fork(0);
    Rng childB = parent.fork(1);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (childA.next() == childB.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(RunningStats, MeanAndVariance) {
    RunningStats stats;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(x);
    EXPECT_EQ(stats.count(), 8u);
    EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
    EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12); // sample variance
    EXPECT_DOUBLE_EQ(stats.min(), 2.0);
    EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStats, EmptyIsZero) {
    RunningStats stats;
    EXPECT_EQ(stats.count(), 0u);
    EXPECT_EQ(stats.mean(), 0.0);
    EXPECT_EQ(stats.variance(), 0.0);
    EXPECT_EQ(stats.stderror(), 0.0);
}

TEST(RunningStats, MergeEqualsSequential) {
    RunningStats whole;
    RunningStats partA;
    RunningStats partB;
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.nextDouble() * 10.0;
        whole.add(x);
        (i < 400 ? partA : partB).add(x);
    }
    partA.merge(partB);
    EXPECT_EQ(partA.count(), whole.count());
    EXPECT_NEAR(partA.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(partA.variance(), whole.variance(), 1e-9);
}

TEST(RunningStats, MergeWithEmpty) {
    RunningStats a;
    a.add(1.0);
    a.add(3.0);
    RunningStats empty;
    a.merge(empty);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    empty.merge(a);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, MergeEmptyWithEmptyStaysEmpty) {
    RunningStats a;
    RunningStats b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeIntoEmptyPreservesExtrema) {
    RunningStats full;
    full.add(-7.0);
    full.add(11.0);
    RunningStats empty;
    empty.merge(full);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.min(), -7.0);
    EXPECT_DOUBLE_EQ(empty.max(), 11.0);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, MergeSingleSamples) {
    RunningStats a;
    a.add(1.0);
    RunningStats b;
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_NEAR(a.variance(), 2.0, 1e-12); // sample variance of {1, 3}
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
}

TEST(RunningStats, MergeDisjointRangesTracksGlobalExtrema) {
    RunningStats low;
    for (double x : {1.0, 2.0, 3.0}) low.add(x);
    RunningStats high;
    for (double x : {100.0, 200.0}) high.add(x);
    low.merge(high);
    EXPECT_EQ(low.count(), 5u);
    EXPECT_DOUBLE_EQ(low.min(), 1.0);
    EXPECT_DOUBLE_EQ(low.max(), 200.0);
}

TEST(Stats, StudentTMatchesTable) {
    EXPECT_NEAR(studentTCritical(1), 12.706, 1e-3);
    EXPECT_NEAR(studentTCritical(9), 2.262, 1e-3);
    EXPECT_NEAR(studentTCritical(30), 2.042, 1e-3);
    // Asymptotically the normal quantile.
    EXPECT_NEAR(studentTCritical(100000), 1.960, 1e-2);
}

TEST(Stats, ConfidenceIntervalShrinksWithSamples) {
    RunningStats small;
    RunningStats large;
    Rng rng(17);
    for (int i = 0; i < 10; ++i) small.add(rng.nextDouble());
    for (int i = 0; i < 1000; ++i) large.add(rng.nextDouble());
    EXPECT_GT(confidenceInterval(small).halfWidth, confidenceInterval(large).halfWidth);
}

TEST(Stats, GeomeanOfConstantIsConstant) {
    const std::vector<double> xs = {3.0, 3.0, 3.0};
    EXPECT_NEAR(geomean(xs), 3.0, 1e-12);
}

TEST(Stats, GeomeanKnownValue) {
    const std::vector<double> xs = {1.0, 4.0, 16.0};
    EXPECT_NEAR(geomean(xs), 4.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
    const std::vector<double> xs = {1.0, 0.0};
    EXPECT_THROW((void)geomean(xs), ContractViolation);
}

TEST(Stats, PercentileNearestRank) {
    const std::vector<double> xs = {5.0, 1.0, 3.0, 2.0, 4.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 5.0);
}

TEST(Histogram, BinningAndNormalization) {
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(9.9);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(1), 2.0);
    EXPECT_DOUBLE_EQ(h.count(9), 1.0);
    const auto norm = h.normalized();
    EXPECT_NEAR(norm[1], 0.5, 1e-12);
    double total = 0.0;
    for (double f : norm) total += f;
    EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
    Histogram h(0.0, 1.0, 4);
    h.add(-5.0);
    h.add(7.0);
    EXPECT_DOUBLE_EQ(h.count(0), 1.0);
    EXPECT_DOUBLE_EQ(h.count(3), 1.0);
    EXPECT_DOUBLE_EQ(h.totalWeight(), 2.0);
}

TEST(Histogram, WeightedSamples) {
    Histogram h(0.0, 1.0, 2);
    h.add(0.25, 3.0);
    h.add(0.75, 1.0);
    EXPECT_DOUBLE_EQ(h.normalized()[0], 0.75);
    EXPECT_NEAR(h.sampleMean(), (0.25 * 3 + 0.75) / 4.0, 1e-12);
}

TEST(Histogram, RenderContainsEveryBin) {
    Histogram h(0.0, 1.0, 3);
    h.add(0.1);
    const std::string out = h.render();
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(TextTable, RenderAligned) {
    TextTable table({"name", "value"});
    table.addRow({"alpha", "1"});
    table.addNumericRow("beta", {2.5}, 1);
    const std::string out = table.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("2.5"), std::string::npos);
    EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, RejectsWrongArity) {
    TextTable table({"a", "b"});
    EXPECT_THROW(table.addRow({"only-one"}), ContractViolation);
}

TEST(TextTable, CsvQuoting) {
    TextTable table({"k", "v"});
    table.addRow({"with,comma", "with\"quote"});
    const std::string csv = table.renderCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Units, VoltageConversions) {
    const Voltage v = 760_mV;
    EXPECT_DOUBLE_EQ(v.volts(), 0.76);
    EXPECT_DOUBLE_EQ(v.millivolts(), 760.0);
    EXPECT_EQ(v, Voltage::fromVolts(0.76));
    EXPECT_LT(400_mV, 760_mV);
}

TEST(Units, FrequencyConversions) {
    const Frequency f = Frequency::fromMegahertz(1607);
    EXPECT_DOUBLE_EQ(f.hertz(), 1.607e9);
    EXPECT_NEAR(f.periodSeconds(), 6.2228e-10, 1e-13);
}

TEST(Contracts, ExpectsThrowsWithLocation) {
    try {
        VC_EXPECTS(1 == 2);
        FAIL() << "should have thrown";
    } catch (const ContractViolation& e) {
        EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
    }
}

} // namespace
} // namespace voltcache
