// Tests for the sweep-as-a-service layer (src/serve) and its foundations:
// the SHA-256 implementation (FIPS 180-4 vectors), the content keys
// (module/leg digests — stability, and sensitivity to every result-affecting
// config field), the LegResult wire codec, the LRU + on-disk LegStore
// (persistence across reopen, corrupted-record rejection, eviction), the
// NDJSON protocol (parsing, framing, bounded line reader), cached-sweep
// byte-identity against cold and plain sweeps, and an in-process end-to-end
// server round trip with a warm second submission.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/json_parse.h"
#include "common/socket.h"
#include "core/report.h"
#include "core/sweep.h"
#include "cpu/simulator.h"
#include "power/dvfs.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "serve/store.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using literals::operator""_mV;

// ---- SHA-256 ----

TEST(Sha256, Fips180Vectors) {
    EXPECT_EQ(digestToHex(Sha256::digest("")),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(digestToHex(Sha256::digest("abc")),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    // Two-block message (FIPS 180-4 appendix B.2).
    EXPECT_EQ(digestToHex(Sha256::digest(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
    // Exactly one padding-boundary block (55/56/64 bytes).
    EXPECT_EQ(digestToHex(Sha256::digest(std::string(56, 'a'))),
              digestToHex(Sha256::digest(std::string(56, 'a'))));
}

TEST(Sha256, IncrementalUpdatesMatchOneShot) {
    Sha256 sha;
    sha.update("ab");
    sha.update("c");
    EXPECT_EQ(digestToHex(sha.finish()), digestToHex(Sha256::digest("abc")));
    // Long input crossing many block boundaries, fed in ragged chunks.
    const std::string big(1000, 'x');
    Sha256 ragged;
    for (std::size_t i = 0; i < big.size(); i += 77) {
        ragged.update(std::string_view(big).substr(i, 77));
    }
    EXPECT_EQ(digestToHex(ragged.finish()), digestToHex(Sha256::digest(big)));
}

TEST(HashWriter, LengthPrefixingPreventsFieldSliding) {
    // ("ab","c") and ("a","bc") must not collide: strings are
    // length-prefixed, never concatenated raw.
    HashWriter left;
    left.str("ab");
    left.str("c");
    HashWriter right;
    right.str("a");
    right.str("bc");
    EXPECT_NE(left.finish(), right.finish());
}

// ---- content keys ----

TEST(ContentKey, ModuleDigestStableAndDiscriminating) {
    const Module crc = buildBenchmark("crc32", WorkloadScale::Tiny);
    const Module crcAgain = buildBenchmark("crc32", WorkloadScale::Tiny);
    EXPECT_EQ(moduleDigest(crc), moduleDigest(crcAgain));
    EXPECT_NE(moduleDigest(crc),
              moduleDigest(buildBenchmark("basicmath", WorkloadScale::Tiny)));
    EXPECT_NE(moduleDigest(crc),
              moduleDigest(buildBenchmark("crc32", WorkloadScale::Small)));
}

TEST(ContentKey, LegDigestSensitiveToEveryResultAffectingField) {
    const Digest256 module = moduleDigest(buildBenchmark("crc32", WorkloadScale::Tiny));
    const OperatingPoint point = DvfsTable::at(400_mV);
    const SystemConfig base;
    const Digest256 reference =
        legDigest(module, SchemeKind::FfwBbr, point, 42, base);

    // Same inputs → same key, across independent computations.
    EXPECT_EQ(reference, legDigest(module, SchemeKind::FfwBbr, point, 42, base));

    // Scheme, operating point, and chip seed.
    EXPECT_NE(reference,
              legDigest(module, SchemeKind::SimpleWordDisable, point, 42, base));
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr,
                                   DvfsTable::at(440_mV), 42, base));
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, point, 43, base));

    // Every SystemConfig field that changes simulated results.
    SystemConfig changed = base;
    changed.faultRateScale = 2.0;
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, point, 42, changed));
    changed = base;
    changed.maxInstructions = 1000;
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, point, 42, changed));
    changed = base;
    changed.maxBlockWords += 1;
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, point, 42, changed));
    changed = base;
    changed.dramLatencyNs += 1.0;
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, point, 42, changed));
    changed = base;
    changed.energy.l1AccessEnergy *= 1.5;
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, point, 42, changed));
    changed = base;
    changed.pipeline.mispredictPenalty += 1;
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, point, 42, changed));
    changed = base;
    changed.pipeline.predictor.bhtEntries *= 2;
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, point, 42, changed));
    changed = base;
    changed.l1Org.associativity = 2;
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, point, 42, changed));

    // An operating point with a perturbed pFailBit (fault-model parameter).
    OperatingPoint perturbed = point;
    perturbed.pFailBit *= 1.01;
    EXPECT_NE(reference, legDigest(module, SchemeKind::FfwBbr, perturbed, 42, base));
}

// ---- LegResult codec ----

LegResult sampleResult() {
    LegResult value;
    value.normRuntime = 1.25;
    value.l2PerKilo = 17.5;
    value.normEpi = 0.75;
    value.busyFrac = 0.5;
    value.ifetchFrac = 0.25;
    value.dmemFrac = 0.125;
    value.branchFrac = 0.125;
    value.forensics.hasFfw = true;
    value.forensics.ffwWindowSize[8] = 1000;
    value.forensics.ffwRecenters = 7;
    value.forensics.hasBbr = true;
    value.forensics.bbrChunkWords[3] = 12;
    value.forensics.bbrBlocksPlaced = 99;
    return value;
}

TEST(LegResultCodec, RoundTrip) {
    const LegResult value = sampleResult();
    const std::string payload = serve::encodeLegResult(value);
    EXPECT_EQ(payload.size(), serve::kLegPayloadBytes);
    LegResult decoded;
    ASSERT_TRUE(serve::decodeLegResult(payload, decoded));
    EXPECT_EQ(serve::encodeLegResult(decoded), payload);
    EXPECT_DOUBLE_EQ(decoded.normRuntime, value.normRuntime);
    EXPECT_EQ(decoded.forensics.ffwWindowSize[8], 1000u);
    EXPECT_EQ(decoded.forensics.bbrBlocksPlaced, 99u);
}

TEST(LegResultCodec, RejectsWrongSizeAndBadEnum) {
    LegResult out;
    EXPECT_FALSE(serve::decodeLegResult("short", out));
    std::string payload = serve::encodeLegResult(sampleResult());
    payload.back() = '\x7f'; // failCause out of range
    EXPECT_FALSE(serve::decodeLegResult(payload, out));
}

// ---- LegStore ----

std::string freshDir(const char* stem) {
    const std::string dir = testing::TempDir() + stem;
    std::filesystem::remove_all(dir);
    return dir;
}

Digest256 keyFor(std::uint8_t tag) {
    Digest256 key{};
    key[0] = tag;
    return key;
}

TEST(LegStore, HitMissAndStats) {
    serve::LegStore store({.byteBudget = 1 << 20, .directory = ""});
    LegResult out;
    EXPECT_FALSE(store.lookup(keyFor(1), out));
    store.store(keyFor(1), sampleResult());
    ASSERT_TRUE(store.lookup(keyFor(1), out));
    EXPECT_DOUBLE_EQ(out.l2PerKilo, 17.5);
    const serve::LegStore::Stats stats = store.stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.inserts, 1u);
    EXPECT_EQ(stats.entries, 1u);
}

TEST(LegStore, EvictsLeastRecentlyUsedUnderByteBudget) {
    // Budget for ~2 entries; inserting 3 must evict the least recently used.
    serve::LegStore store({.byteBudget = 1400, .directory = ""});
    store.store(keyFor(1), sampleResult());
    store.store(keyFor(2), sampleResult());
    LegResult out;
    ASSERT_TRUE(store.lookup(keyFor(1), out)); // touch 1 → 2 becomes LRU
    store.store(keyFor(3), sampleResult());
    EXPECT_TRUE(store.lookup(keyFor(1), out));
    EXPECT_FALSE(store.lookup(keyFor(2), out));
    EXPECT_TRUE(store.lookup(keyFor(3), out));
    EXPECT_GE(store.stats().evictions, 1u);
}

TEST(LegStore, SegmentSurvivesReopen) {
    const std::string dir = freshDir("legstore_reopen");
    {
        serve::LegStore store({.byteBudget = 1 << 20, .directory = dir});
        store.store(keyFor(1), sampleResult());
        store.store(keyFor(2), sampleResult());
    } // destructor flushes
    serve::LegStore reopened({.byteBudget = 1 << 20, .directory = dir});
    EXPECT_EQ(reopened.stats().loaded, 2u);
    EXPECT_EQ(reopened.stats().rejected, 0u);
    LegResult out;
    EXPECT_TRUE(reopened.lookup(keyFor(1), out));
    EXPECT_TRUE(reopened.lookup(keyFor(2), out));
}

TEST(LegStore, RejectsCorruptedRecordOnLoad) {
    const std::string dir = freshDir("legstore_corrupt");
    {
        serve::LegStore store({.byteBudget = 1 << 20, .directory = dir});
        store.store(keyFor(1), sampleResult());
        store.store(keyFor(2), sampleResult());
    }
    // Flip one byte inside the FIRST record's payload (after the 12-byte
    // header and 32-byte key).
    const std::string path = dir + "/legs.vcs";
    {
        std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(file.is_open());
        file.seekp(12 + 32 + 8);
        char byte = 0;
        file.read(&byte, 1);
        file.seekp(12 + 32 + 8);
        byte = static_cast<char>(byte ^ 0x55);
        file.write(&byte, 1);
    }
    serve::LegStore reopened({.byteBudget = 1 << 20, .directory = dir});
    EXPECT_EQ(reopened.stats().loaded, 1u);
    EXPECT_EQ(reopened.stats().rejected, 1u);
    LegResult out;
    EXPECT_FALSE(reopened.lookup(keyFor(1), out)); // the corrupted record
    EXPECT_TRUE(reopened.lookup(keyFor(2), out));  // framing survived
}

TEST(LegStore, DiscardsForeignOrStaleSegmentWholesale) {
    const std::string dir = freshDir("legstore_stale");
    std::filesystem::create_directories(dir);
    {
        std::ofstream file(dir + "/legs.vcs", std::ios::binary);
        file << "NOTAMAGIC-and-some-garbage";
    }
    serve::LegStore store({.byteBudget = 1 << 20, .directory = dir});
    EXPECT_EQ(store.stats().loaded, 0u);
    EXPECT_GE(store.stats().rejected, 1u);
    // The store stays usable and the segment was re-initialized.
    store.store(keyFor(9), sampleResult());
    store.flush();
    serve::LegStore reopened({.byteBudget = 1 << 20, .directory = dir});
    EXPECT_EQ(reopened.stats().loaded, 1u);
}

// ---- cached sweeps: byte identity ----

SweepConfig tinyConfig() {
    SweepConfig config;
    config.benchmarks = {"crc32"};
    config.schemes = {SchemeKind::SimpleWordDisable, SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(560_mV), DvfsTable::at(400_mV)};
    config.trials = 2;
    config.scale = WorkloadScale::Tiny;
    config.threads = 2;
    return config;
}

std::string exportJson(const SweepResult& result, const SweepConfig& config) {
    SweepExportMeta meta;
    meta.version = "serve-test"; // fixed: exclude git describe from the diff
    meta.seed = config.baseSeed;
    meta.trials = config.trials;
    meta.scale = "tiny";
    meta.benchmarks = config.benchmarks;
    return sweepResultToJson(result, meta);
}

TEST(CachedSweep, WarmSweepIsByteIdenticalAndFullyCached) {
    const SweepConfig plain = tinyConfig();
    const std::string plainJson = exportJson(runSweep(plain), plain);

    serve::LegStore store({.byteBudget = 64 << 20, .directory = ""});
    SweepConfig cold = tinyConfig();
    cold.resultSource = &store;
    const std::string coldJson = exportJson(runSweep(cold), cold);
    EXPECT_EQ(plainJson, coldJson);
    EXPECT_EQ(store.stats().hits, 0u);
    EXPECT_GT(store.stats().inserts, 0u);

    SweepConfig warm = tinyConfig();
    warm.resultSource = &store;
    SweepProgress last;
    warm.onProgress = [&last](const SweepProgress& progress) { last = progress; };
    const std::string warmJson = exportJson(runSweep(warm), warm);
    EXPECT_EQ(plainJson, warmJson);
    EXPECT_EQ(last.legsCached, last.legsTotal);
    EXPECT_GT(last.legsTotal, 0u);
}

TEST(CachedSweep, PartialOverlapStaysByteIdentical) {
    // Warm the store with trials=2, then run trials=3: the first two trials
    // of every point hit, the third misses — the result must still match a
    // plain trials=3 sweep byte for byte.
    serve::LegStore store({.byteBudget = 64 << 20, .directory = ""});
    SweepConfig first = tinyConfig();
    first.resultSource = &store;
    (void)runSweep(first);

    SweepConfig bigger = tinyConfig();
    bigger.trials = 3;
    const std::string plainJson = exportJson(runSweep(bigger), bigger);

    SweepConfig mixed = tinyConfig();
    mixed.trials = 3;
    mixed.resultSource = &store;
    SweepProgress last;
    mixed.onProgress = [&last](const SweepProgress& progress) { last = progress; };
    const std::string mixedJson = exportJson(runSweep(mixed), mixed);
    EXPECT_EQ(plainJson, mixedJson);
    EXPECT_GT(last.legsCached, 0u);
    EXPECT_LT(last.legsCached, last.legsTotal);
}

TEST(CachedSweep, ObserversDisableTheStore) {
    struct NullObserver : TraceObserver {};
    NullObserver observer;
    serve::LegStore store({.byteBudget = 64 << 20, .directory = ""});
    SweepConfig config = tinyConfig();
    config.resultSource = &store;
    config.systemTemplate.observers.push_back(&observer);
    config.threads = 1; // observers are not thread-safe
    (void)runSweep(config);
    // Observers must watch real execution: the store is never consulted.
    EXPECT_EQ(store.stats().hits + store.stats().misses + store.stats().inserts, 0u);
}

// ---- protocol ----

TEST(Protocol, ParsesJobsWithPerOpDefaults) {
    const serve::Request sweep = serve::parseRequest(
        R"({"op":"sweep","id":"a","benchmarks":"crc32","mv":"560,400","progress":true})");
    ASSERT_EQ(sweep.kind, serve::Request::Kind::Job);
    EXPECT_EQ(sweep.job.trials, 3u);
    EXPECT_TRUE(sweep.job.progress);
    EXPECT_EQ(sweep.job.mv, "560,400");

    const serve::Request run = serve::parseRequest(R"({"op":"run"})");
    ASSERT_EQ(run.kind, serve::Request::Kind::Job);
    EXPECT_EQ(run.job.trials, 1u);

    EXPECT_EQ(serve::parseRequest(R"({"op":"ping"})").kind,
              serve::Request::Kind::Ping);
    EXPECT_EQ(serve::parseRequest("not json").kind, serve::Request::Kind::Invalid);
    EXPECT_EQ(serve::parseRequest(R"({"op":"launch-missiles"})").kind,
              serve::Request::Kind::Invalid);
}

TEST(Protocol, JobJsonRoundTrips) {
    serve::JobRequest job;
    job.op = "verify";
    job.id = "j1";
    job.benchmarks = "crc32,basicmath";
    job.mv = "560";
    job.trials = 5;
    job.seed = 777;
    job.progress = true;
    const serve::Request parsed = serve::parseRequest(serve::jobToJson(job));
    ASSERT_EQ(parsed.kind, serve::Request::Kind::Job);
    EXPECT_EQ(parsed.job.op, "verify");
    EXPECT_EQ(parsed.job.id, "j1");
    EXPECT_EQ(parsed.job.benchmarks, "crc32,basicmath");
    EXPECT_EQ(parsed.job.trials, 5u);
    EXPECT_EQ(parsed.job.seed, 777u);
    EXPECT_TRUE(parsed.job.progress);
}

TEST(Protocol, LineReaderSplitsAndBounds) {
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    net::Socket reader(fds[0]);
    net::Socket writer(fds[1]);
    ASSERT_TRUE(writer.sendAll("alpha\nbeta\r\ngam"));
    serve::LineReader lines(reader, 64);
    std::string line;
    ASSERT_EQ(lines.next(line), serve::LineReader::Status::Line);
    EXPECT_EQ(line, "alpha");
    ASSERT_EQ(lines.next(line), serve::LineReader::Status::Line);
    EXPECT_EQ(line, "beta"); // '\r' stripped
    ASSERT_TRUE(writer.sendAll("ma\n"));
    ASSERT_EQ(lines.next(line), serve::LineReader::Status::Line);
    EXPECT_EQ(line, "gamma");
    writer.close();
    EXPECT_EQ(lines.next(line), serve::LineReader::Status::Eof);

    // Overflow: a line longer than the bound is rejected, not buffered.
    int fds2[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds2), 0);
    net::Socket reader2(fds2[0]);
    net::Socket writer2(fds2[1]);
    ASSERT_TRUE(writer2.sendAll(std::string(100, 'x')));
    serve::LineReader bounded(reader2, 16);
    EXPECT_EQ(bounded.next(line), serve::LineReader::Status::Overflow);
}

// ---- end-to-end server ----

struct EventLog {
    std::vector<JsonValue> events;
    std::string document;
};

EventLog submitJob(std::uint16_t port, const std::string& requestLine) {
    net::Socket socket =
        net::tcpConnect("127.0.0.1", port, std::chrono::milliseconds(60000));
    EXPECT_TRUE(socket.sendAll(requestLine + "\n"));
    serve::LineReader reader(socket, serve::kMaxResponseLineBytes);
    EventLog log;
    std::string line;
    while (reader.next(line) == serve::LineReader::Status::Line) {
        const JsonValue event = parseJson(line);
        const std::string kind = event.stringOr("ev", "");
        log.events.push_back(event);
        if (kind == "result") {
            EXPECT_EQ(reader.next(log.document), serve::LineReader::Status::Line);
            break;
        }
        // pong / stats / error are terminal for their request; only
        // accepted / progress precede more events.
        if (kind != "accepted" && kind != "progress") break;
    }
    return log;
}

const JsonValue* lastResult(const EventLog& log) {
    for (const JsonValue& event : log.events) {
        if (event.stringOr("ev", "") == "result") return &event;
    }
    return nullptr;
}

TEST(Server, WarmSecondSubmissionIsByteIdenticalAndMostlyHits) {
    serve::ServeOptions options;
    options.port = 0;
    options.threads = 2;
    serve::Server server(options);
    std::thread runner([&server] { server.run(); });

    const std::string request =
        R"({"op":"sweep","id":"one","benchmarks":"crc32","scale":"tiny","trials":1})";
    const EventLog first = submitJob(server.port(), request);
    const EventLog second = submitJob(server.port(), request);
    server.requestStop();
    runner.join();

    const JsonValue* firstResult = lastResult(first);
    const JsonValue* secondResult = lastResult(second);
    ASSERT_NE(firstResult, nullptr);
    ASSERT_NE(secondResult, nullptr);
    EXPECT_FALSE(first.document.empty());
    EXPECT_EQ(first.document, second.document);
    EXPECT_DOUBLE_EQ(firstResult->numberOr("hitRate", -1.0), 0.0);
    EXPECT_GE(secondResult->numberOr("hitRate", 0.0), 0.9);
    EXPECT_GT(secondResult->numberOr("legsCached", 0.0), 0.0);
    EXPECT_EQ(server.totals().jobsCompleted, 2u);
}

TEST(Server, AnswersPingRejectsGarbageAndBoundsRequests) {
    serve::ServeOptions options;
    options.port = 0;
    serve::Server server(options);
    std::thread runner([&server] { server.run(); });

    {
        const EventLog pong = submitJob(server.port(), R"({"op":"ping"})");
        ASSERT_FALSE(pong.events.empty());
        EXPECT_EQ(pong.events.front().stringOr("ev", ""), "pong");
    }
    {
        const EventLog error = submitJob(server.port(), "this is not json");
        ASSERT_FALSE(error.events.empty());
        EXPECT_EQ(error.events.front().stringOr("ev", ""), "error");
    }
    {
        // An oversized request line draws an error and a close, never a hang.
        const EventLog oversized =
            submitJob(server.port(), std::string(serve::kMaxRequestLineBytes + 10, 'z'));
        ASSERT_FALSE(oversized.events.empty());
        EXPECT_EQ(oversized.events.front().stringOr("ev", ""), "error");
    }
    {
        const EventLog stats = submitJob(server.port(), R"({"op":"stats"})");
        ASSERT_FALSE(stats.events.empty());
        EXPECT_EQ(stats.events.front().stringOr("ev", ""), "stats");
    }

    server.requestStop();
    runner.join();
}

TEST(Server, BadJobFieldsReportAnErrorEvent) {
    serve::ServeOptions options;
    options.port = 0;
    serve::Server server(options);
    std::thread runner([&server] { server.run(); });
    const EventLog log = submitJob(
        server.port(), R"({"op":"sweep","id":"bad","scale":"enormous"})");
    bool sawError = false;
    for (const JsonValue& event : log.events) {
        if (event.stringOr("ev", "") == "error") sawError = true;
    }
    EXPECT_TRUE(sawError);
    server.requestStop();
    runner.join();
    EXPECT_EQ(server.totals().jobErrors, 1u);
}

} // namespace
} // namespace voltcache
