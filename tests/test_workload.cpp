// Tests for the benchmark suite: every program builds, validates, runs to
// completion, computes a stable checksum, and exhibits the data-locality
// profile the paper's Fig. 3 assigns to the program it models.
#include <gtest/gtest.h>

#include <string>

#include "cpu/simulator.h"
#include "isa/builder.h"
#include "linker/linker.h"
#include "schemes/conventional.h"
#include "workload/locality.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

struct RunOutcome {
    RunStats stats;
    std::int32_t checksum = 0;
    double spatial = 0.0;
    double reuse = 0.0;
    std::vector<LocalityProfiler::IntervalStats> intervals;

    /// Access-weighted reuse over the trailing 3/4 of intervals — the
    /// steady state, excluding input-generation warmup (the paper profiles
    /// representative traces, which exclude initialization).
    [[nodiscard]] double steadyReuse() const {
        double weighted = 0.0;
        double total = 0.0;
        for (std::size_t i = intervals.size() / 4; i < intervals.size(); ++i) {
            weighted += intervals[i].wordReuseRate * static_cast<double>(intervals[i].accesses);
            total += static_cast<double>(intervals[i].accesses);
        }
        return total > 0.0 ? weighted / total : 0.0;
    }
};

RunOutcome runBenchmark(const std::string& name, WorkloadScale scale,
                        bool profile = false) {
    const Module module = buildBenchmark(name, scale);
    const LinkOutput linked = link(module);
    L2Cache l2;
    CacheOrganization org;
    ConventionalICache icache(org, l2);
    ConventionalDCache dcache(org, l2);
    Simulator sim(linked.image, module.data, icache, dcache);
    LocalityProfiler profiler;
    if (profile) sim.setObserver(&profiler);
    RunOutcome outcome;
    outcome.stats = sim.run();
    outcome.checksum = sim.reg(1);
    if (profile) {
        profiler.finalize();
        outcome.spatial = profiler.meanSpatialLocality();
        outcome.reuse = profiler.meanWordReuseRate();
        outcome.intervals = profiler.intervals();
    }
    return outcome;
}

class EveryBenchmark : public ::testing::TestWithParam<std::string> {};

TEST_P(EveryBenchmark, BuildsAndValidates) {
    const Module module = buildBenchmark(GetParam(), WorkloadScale::Tiny);
    EXPECT_NO_THROW(module.validate());
    EXPECT_GT(module.totalCodeWords(), 20u);
    EXPECT_GE(module.functions.size(), 2u); // main + stdlib at least
}

TEST_P(EveryBenchmark, RunsToCompletion) {
    const auto outcome = runBenchmark(GetParam(), WorkloadScale::Tiny);
    EXPECT_TRUE(outcome.stats.halted);
    EXPECT_GT(outcome.stats.instructions, 10000u) << "workload too small to be meaningful";
    EXPECT_LT(outcome.stats.instructions, 5000000u) << "Tiny scale too large for tests";
}

TEST_P(EveryBenchmark, ChecksumDeterministic) {
    const auto first = runBenchmark(GetParam(), WorkloadScale::Tiny);
    const auto second = runBenchmark(GetParam(), WorkloadScale::Tiny);
    EXPECT_EQ(first.checksum, second.checksum);
}

TEST_P(EveryBenchmark, ScalesGrowTheWork) {
    const auto tiny = runBenchmark(GetParam(), WorkloadScale::Tiny);
    const auto small = runBenchmark(GetParam(), WorkloadScale::Small);
    EXPECT_GT(small.stats.instructions, tiny.stats.instructions * 2);
}

INSTANTIATE_TEST_SUITE_P(Suite, EveryBenchmark,
                         ::testing::Values("basicmath", "qsort", "dijkstra", "patricia",
                                           "crc32", "adpcm", "mcf_r", "bzip2_r", "hmmer_r",
                                           "libquantum_r"),
                         [](const auto& info) { return info.param; });

TEST(Workload, ListHasTenEntries) {
    EXPECT_EQ(benchmarkList().size(), 10u);
    EXPECT_THROW((void)buildBenchmark("nope", WorkloadScale::Tiny), std::out_of_range);
}

TEST(Workload, QsortActuallySorts) {
    // The qsort checksum folds adjacent inversions into bits 16+; a sorted
    // array leaves them zero, i.e. checksum == plain element sum. The sum
    // is reproducible on the host with the same LCG.
    const auto outcome = runBenchmark("qsort", WorkloadScale::Tiny);
    std::uint32_t seed = 0x1234567;
    std::uint32_t sum = 0; // unsigned: mirrors the machine's wrapping 32-bit adds
    for (int i = 0; i < 256; ++i) {
        seed = seed * 1103515245u + 12345u;
        sum += seed;
    }
    EXPECT_EQ(static_cast<std::uint32_t>(outcome.checksum), sum)
        << "inversions present or sum corrupted";
}

TEST(Workload, Crc32MatchesHostImplementation) {
    const auto outcome = runBenchmark("crc32", WorkloadScale::Tiny);
    // Reproduce: 512 LCG words, standard reflected CRC-32.
    std::uint32_t table[256];
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k) c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    std::uint32_t seed = 0xc4c32;
    std::uint32_t crc = 0xFFFFFFFFu;
    for (int i = 0; i < 512; ++i) {
        seed = seed * 1103515245u + 12345u;
        std::uint32_t word = seed;
        for (int b = 0; b < 4; ++b) {
            crc = (crc >> 8) ^ table[(crc ^ word) & 0xFF];
            word >>= 8;
        }
    }
    crc ^= 0xFFFFFFFFu;
    EXPECT_EQ(static_cast<std::uint32_t>(outcome.checksum), crc);
}

// ---- Fig. 3 locality profiles ----

TEST(Locality, LibquantumIsTheStreamingOutlier) {
    // Fig. 3: 462.libquantum is the only program with high spatial locality
    // AND low word reuse.
    const auto lib = runBenchmark("libquantum_r", WorkloadScale::Tiny, true);
    EXPECT_GT(lib.spatial, 0.75);
    EXPECT_LT(lib.reuse, 0.4);
}

TEST(Locality, PointerChasersHaveLowSpatialHighReuse) {
    const auto mcf = runBenchmark("mcf_r", WorkloadScale::Tiny, true);
    EXPECT_LT(mcf.spatial, 0.65);
    EXPECT_GT(mcf.reuse, 0.6);
    const auto patricia = runBenchmark("patricia", WorkloadScale::Tiny, true);
    EXPECT_LT(patricia.spatial, 0.7);
    EXPECT_GT(patricia.reuse, 0.6);
}

TEST(Locality, TableKernelsHaveHighReuse) {
    for (const char* name : {"basicmath", "crc32", "adpcm", "bzip2_r", "hmmer_r"}) {
        const auto outcome = runBenchmark(name, WorkloadScale::Small, true);
        EXPECT_GT(outcome.steadyReuse(), 0.55) << name;
    }
}

TEST(Locality, ProfilerIntervalMechanics) {
    LocalityProfiler profiler(100); // tiny interval for the test
    const Instruction nop{};
    // Interval 1: two accesses to the same word of one block.
    profiler.onDataAccess(0x1000, false);
    profiler.onDataAccess(0x1000, true);
    for (int i = 0; i < 100; ++i) profiler.onInstruction(0, nop);
    ASSERT_EQ(profiler.intervals().size(), 1u);
    EXPECT_NEAR(profiler.intervals()[0].spatialLocality, 1.0 / 8.0, 1e-12);
    EXPECT_NEAR(profiler.intervals()[0].wordReuseRate, 0.5, 1e-12);
    // Interval 2: a fully streamed block.
    for (int w = 0; w < 8; ++w) profiler.onDataAccess(0x2000 + w * 4, false);
    profiler.finalize();
    ASSERT_EQ(profiler.intervals().size(), 2u);
    EXPECT_NEAR(profiler.intervals()[1].spatialLocality, 1.0, 1e-12);
    EXPECT_NEAR(profiler.intervals()[1].wordReuseRate, 0.0, 1e-12);
}

TEST(Locality, EmptyIntervalsAreSkipped) {
    LocalityProfiler profiler(10);
    const Instruction nop{};
    for (int i = 0; i < 100; ++i) profiler.onInstruction(0, nop);
    profiler.finalize();
    EXPECT_TRUE(profiler.intervals().empty());
}

} // namespace
} // namespace voltcache
