// Tests for the static-analysis layer: the image CFG builder, the BBR
// placement prover, and the module lint pass (tools/vcverify's engine).
#include <gtest/gtest.h>

#include "analysis/image_cfg.h"
#include "analysis/lint.h"
#include "analysis/placement_prover.h"
#include "analysis/verify.h"
#include "compiler/passes.h"
#include "cpu/simulator.h"
#include "isa/builder.h"
#include "linker/linker.h"
#include "schemes/bbr.h"
#include "schemes/conventional.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using namespace regs;
using namespace analysis;
using voltcache::literals::operator""_mV;

Module loopProgram() {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto loop = f.newBlock("loop");
    auto done = f.newBlock("done");
    f.li(r1, 0);
    f.li(r2, 5);
    f.jmp(loop);
    f.at(loop);
    f.beq(r2, r0, done);
    f.add(r1, r1, r2);
    f.addi(r2, r2, -1);
    f.jmp(loop);
    f.at(done);
    f.halt();
    return mb.take();
}

bool hasFinding(const std::vector<LintFinding>& findings, LintCode code) {
    for (const auto& finding : findings) {
        if (finding.code == code) return true;
    }
    return false;
}

// ---------------------------------------------------------------- ImageCfg

TEST(ImageCfg, SingleBlockAllReachable) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.addi(r1, r0, 7).halt();
    const LinkOutput out = link(mb.take());
    ImageCfg cfg(out.image);
    EXPECT_EQ(cfg.reachableAddrs().size(), 2u);
    EXPECT_TRUE(cfg.diagnostics().empty());
    EXPECT_TRUE(cfg.deadBlocks().empty());
}

TEST(ImageCfg, BackEdgeLoopTerminatesAndCoversAllBlocks) {
    const Module module = loopProgram();
    const LinkOutput out = link(module);
    ImageCfg cfg(out.image);
    // Every instruction word of every block is reachable; the back edge to
    // 'loop' must not loop the walk.
    EXPECT_EQ(cfg.reachableAddrs().size(), out.stats.codeWords);
    EXPECT_TRUE(cfg.deadBlocks().empty());
    EXPECT_FALSE(cfg.hasErrors());
}

TEST(ImageCfg, CallGraphMakesCalleeAndReturnSiteReachable) {
    ModuleBuilder mb;
    auto helper = mb.function("helper");
    helper.addi(r3, r0, 9).ret();
    auto f = mb.function("main");
    f.call("helper");
    f.addi(r1, r3, 0); // return site: reachable only via the call fall-through
    f.halt();
    mb.setEntry("main");
    const Module module = mb.take();
    const LinkOutput out = link(module);
    ImageCfg cfg(out.image);
    EXPECT_EQ(cfg.reachableAddrs().size(), out.stats.codeWords);
    EXPECT_TRUE(cfg.deadBlocks().empty());
}

TEST(ImageCfg, IndirectJalrOverapproximatesToAllFunctionEntries) {
    ModuleBuilder mb;
    auto target = mb.function("maybe_called");
    target.halt();
    auto f = mb.function("main");
    f.addi(r5, r0, 0);
    f.halt();
    mb.setEntry("main");
    Module module = mb.take();
    // Computed jump: nothing names 'maybe_called', but a jalr through r5
    // could reach any entry — the over-approximation keeps it live.
    module.findFunction("main")->blocks[0].insts.back() =
        Instruction{Opcode::Jalr, r0, r5, 0, 0};
    const LinkOutput out = link(module);
    ImageCfg cfg(out.image);
    EXPECT_EQ(cfg.deadBlocks().size(), 0u);
    EXPECT_EQ(cfg.reachableAddrs().size(), out.stats.codeWords);
}

TEST(ImageCfg, DeadBlockAfterUnconditionalJumpIsFound) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto dead = f.newBlock("dead");
    auto live = f.newBlock("live");
    f.jmp(live);
    f.at(dead).addi(r1, r1, 1).addi(r1, r1, 2).halt(); // nothing targets it
    f.at(live).halt();
    const Module module = mb.take();
    const LinkOutput out = link(module);
    ImageCfg cfg(out.image);
    ASSERT_EQ(cfg.deadBlocks().size(), 1u);
    EXPECT_EQ(cfg.deadWords(), 3u);
    const PlacedBlock& deadBlock = out.image.placements()[cfg.deadBlocks()[0]];
    EXPECT_FALSE(cfg.isReachable(deadBlock.byteAddr));
    EXPECT_TRUE(cfg.blockPathTo(deadBlock.byteAddr).empty());
}

TEST(ImageCfg, BlockPathLeadsFromEntryToTarget) {
    const Module module = loopProgram();
    const LinkOutput out = link(module);
    ImageCfg cfg(out.image);
    const PlacedBlock& done = out.image.placements().back();
    const auto path = cfg.blockPathTo(done.byteAddr);
    ASSERT_GE(path.size(), 2u);
    EXPECT_EQ(path.front(), out.image.entryAddr());
    EXPECT_EQ(path.back(), done.byteAddr);
}

// Hand-built images exercise the malformed shapes the linker never emits.
TEST(ImageCfg, FallthroughIntoLiteralIsAnError) {
    Image image(0, 2);
    image.at(0).kind = ImageWord::Kind::Instruction;
    image.at(0).inst = Instruction{Opcode::Addi, r1, r0, 0, 1}; // runs off the end
    image.at(4).kind = ImageWord::Kind::Literal;
    image.at(4).value = 42;
    image.setEntryAddr(0);
    ImageCfg cfg(image);
    ASSERT_EQ(cfg.diagnostics().size(), 1u);
    EXPECT_EQ(cfg.diagnostics()[0].kind, CfgDiagKind::NonInstructionFetch);
    EXPECT_TRUE(cfg.hasErrors());
}

TEST(ImageCfg, BranchOutsideImageIsAnError) {
    Image image(0, 1);
    image.at(0).kind = ImageWord::Kind::Instruction;
    image.at(0).inst = Instruction{Opcode::Jal, r0, 0, 0, 100}; // way past the end
    image.setEntryAddr(0);
    ImageCfg cfg(image);
    ASSERT_EQ(cfg.diagnostics().size(), 1u);
    EXPECT_EQ(cfg.diagnostics()[0].kind, CfgDiagKind::TargetOutsideImage);
}

TEST(ImageCfg, MidBlockTargetIsAWarningNotAnError) {
    Image image(0, 3);
    for (std::uint32_t w = 0; w < 3; ++w) {
        image.at(w * 4).kind = ImageWord::Kind::Instruction;
        image.at(w * 4).inst = Instruction{Opcode::Halt, 0, 0, 0, 0};
    }
    image.at(0).inst = Instruction{Opcode::Jal, r0, 0, 0, 2}; // into block middle
    PlacedBlock block;
    block.byteAddr = 0;
    block.codeWords = 3;
    image.addPlacement(block);
    image.setEntryAddr(0);
    ImageCfg cfg(image);
    ASSERT_EQ(cfg.diagnostics().size(), 1u);
    EXPECT_EQ(cfg.diagnostics()[0].kind, CfgDiagKind::TargetNotBlockStart);
    EXPECT_FALSE(cfg.hasErrors());
}

// ------------------------------------------------------------------ Prover

TEST(Prover, FindsExactlyTheKnownViolatingWord) {
    const Module module = loopProgram();
    const LinkOutput out = link(module); // contiguous from word 0
    FaultMap map(1024, 8);
    map.setFaultyFlat(1); // second image word: reachable (inside main:entry)
    const PlacementProof proof = provePlacement(out.image, map, &module);
    EXPECT_FALSE(proof.verified);
    ASSERT_EQ(proof.violations.size(), 1u);
    EXPECT_EQ(proof.violations[0].byteAddr, 4u);
    EXPECT_EQ(proof.violations[0].cacheWord, 1u);
    ASSERT_FALSE(proof.violations[0].blockChain.empty());
    EXPECT_EQ(proof.violations[0].blockChain.front(), out.image.entryAddr());
    EXPECT_NE(proof.violations[0].description.find("main:entry"), std::string::npos);
}

TEST(Prover, IgnoresFaultsUnderDeadCodeUnlikeTheWordCounter) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto dead = f.newBlock("dead");
    auto live = f.newBlock("live");
    f.jmp(live);
    f.at(dead).addi(r1, r1, 1).halt();
    f.at(live).halt();
    const Module module = mb.take();
    const LinkOutput out = link(module);
    FaultMap map(1024, 8);
    // Poison the cache word under the dead block's first instruction.
    const PlacedBlock& deadBlock = out.image.placements()[1];
    map.setFaultyFlat((deadBlock.byteAddr / 4) % map.totalWords());
    // The occupancy counter flags it; the CFG-based prover knows no fetch
    // can ever reach it.
    EXPECT_EQ(countPlacementViolations(out.image, map), 1u);
    const PlacementProof proof = provePlacement(out.image, map, &module);
    EXPECT_TRUE(proof.verified);
    EXPECT_EQ(proof.deadBlocks, 1u);
}

TEST(Prover, VerifiesEveryBbrLinkAcross100SeededMaps) {
    Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
    applyBbrTransforms(module);
    const FaultMapGenerator generator;
    std::uint32_t verified = 0;
    std::uint32_t yieldLosses = 0;
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        Rng rng(seed);
        const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
        LinkOptions options;
        options.bbrPlacement = true;
        options.icacheFaultMap = &map;
        try {
            const LinkOutput out = link(module, options);
            const PlacementProof proof = provePlacement(out.image, map, &module);
            EXPECT_TRUE(proof.verified) << "seed " << seed << ":\n" << formatProof(proof);
            EXPECT_EQ(countPlacementViolations(out.image, map), 0u) << "seed " << seed;
            ++verified;
        } catch (const LinkError&) {
            ++yieldLosses; // genuinely unplaceable chip, not a prover concern
        }
    }
    EXPECT_EQ(verified + yieldLosses, 100u);
    EXPECT_GT(verified, 50u); // tiny blocks place on most 400mV chips
}

TEST(Prover, RuntimeEnforcementNeverFiresOnAVerifiedImage) {
    Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
    applyBbrTransforms(module);
    const FaultMapGenerator generator;
    std::uint32_t simulated = 0;
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        Rng rng(seed);
        const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
        LinkOptions options;
        options.bbrPlacement = true;
        options.icacheFaultMap = &map;
        std::optional<LinkOutput> out;
        try {
            out = analysis::linkVerified(module, options);
        } catch (const LinkError&) {
            continue;
        }
        // BbrICache throws PlacementViolation on any fetch of a defective
        // word; a statically-verified image must run to Halt without one.
        L2Cache l2;
        CacheOrganization org;
        BbrICache icache(org, map, l2, BbrICache::Mode::DirectMapped,
                         /*enforcePlacement=*/true);
        ConventionalDCache dcache(org, l2);
        Simulator sim(out->image, module.data, icache, dcache);
        RunStats stats{};
        EXPECT_NO_THROW(stats = sim.run()) << "seed " << seed;
        EXPECT_TRUE(stats.halted);
        ++simulated;
    }
    EXPECT_GT(simulated, 0u);
}

TEST(Prover, LinkVerifiedRejectsAMismatchedMap) {
    Module module = loopProgram();
    applyBbrTransforms(module);
    const FaultMapGenerator generator;
    Rng rng(7);
    const FaultMap linkMap = generator.generate(rng, 400_mV, 1024, 8);
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &linkMap;
    const LinkOutput out = link(module, options);

    Rng rng2(8);
    const FaultMap otherMap = generator.generate(rng2, 400_mV, 1024, 8);
    const PlacementProof proof = provePlacement(out.image, otherMap, &module);
    EXPECT_FALSE(proof.verified); // 27.5% word failure: a clean overlap is
                                  // statistically impossible
    EXPECT_FALSE(proof.violations.empty());
    EXPECT_FALSE(formatProof(proof).empty());
}

// -------------------------------------------------------------------- Lint

TEST(Lint, EmptyModuleReportsMissingEntry) {
    const Module module;
    const auto findings = lintModule(module);
    EXPECT_TRUE(hasFinding(findings, LintCode::EntryMissing));
    EXPECT_TRUE(hasLintErrors(findings));
}

TEST(Lint, CleanTransformedModulePassesBbrMode) {
    Module module = loopProgram();
    applyBbrTransforms(module);
    const auto findings = lintModule(module);
    EXPECT_FALSE(hasLintErrors(findings)) << formatFindings(findings);
}

TEST(Lint, UnsealedFallthroughIsAnErrorInBbrMode) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto next = f.newBlock("next");
    f.addi(r1, r0, 1); // falls through
    f.at(next).halt();
    const Module module = mb.take();
    LintOptions options;
    options.bbrMode = true;
    EXPECT_TRUE(hasFinding(lintModule(module, options), LintCode::FallthroughNotSealed));
    options.bbrMode = false;
    EXPECT_FALSE(hasFinding(lintModule(module, options), LintCode::FallthroughNotSealed));
}

TEST(Lint, FallthroughPastFunctionEndIsAlwaysAnError) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.addi(r1, r0, 1); // last block, no terminator
    const Module module = mb.take();
    LintOptions options;
    options.bbrMode = false;
    EXPECT_TRUE(
        hasFinding(lintModule(module, options), LintCode::FallthroughPastFunctionEnd));
}

TEST(Lint, FallthroughIntoOwnPoolIsAnError) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto next = f.newBlock("next");
    f.ldlConst(r1, 123456789);
    f.at(next).halt();
    Module module = mb.take();
    moveLiteralPools(module); // gives the entry block its own pool...
    // ...then strip the jump insertFallthroughJumps would add, leaving the
    // ill-formed shape: code falling into its own literals.
    LintOptions options;
    options.bbrMode = false;
    EXPECT_TRUE(hasFinding(lintModule(module, options), LintCode::FallthroughIntoPool));
}

TEST(Lint, OversizedBlockAgainstTheMapsLargestChunk) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    for (int i = 0; i < 20; ++i) f.addi(r1, r1, 1);
    f.halt(); // one 21-word block
    const Module module = mb.take();
    LintOptions options;
    options.maxBlockWords = 12;
    const auto findings = lintModule(module, options);
    EXPECT_TRUE(hasFinding(findings, LintCode::OversizedBlock));
    options.maxBlockWords = 21;
    EXPECT_FALSE(hasFinding(lintModule(module, options), LintCode::OversizedBlock));
}

TEST(Lint, LiteralBeyondReachForAnyPlacementIsAnError) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.ldlConst(r1, 424242);
    for (int i = 0; i < 1100; ++i) f.addi(r2, r2, 1); // pool pushed out of reach
    f.halt();
    const Module module = mb.take();
    LintOptions options;
    options.bbrMode = false;
    const auto findings = lintModule(module, options);
    EXPECT_TRUE(hasFinding(findings, LintCode::LiteralOutOfReach));
    // The BBR pipeline moves the pool next to the load: lint comes up clean.
    Module transformed = module;
    applyBbrTransforms(transformed);
    EXPECT_FALSE(
        hasFinding(lintModule(transformed, options), LintCode::LiteralOutOfReach));
}

TEST(Lint, BranchWithoutRelocationIsAnError) {
    Module module;
    Function fn;
    fn.name = "main";
    BasicBlock block;
    block.label = "entry";
    block.insts.push_back(Instruction{Opcode::Beq, 0, 1, 2, 0}); // no reloc
    block.insts.push_back(Instruction{Opcode::Halt, 0, 0, 0, 0});
    fn.blocks.push_back(block);
    module.functions.push_back(fn);
    const auto findings = lintModule(module);
    EXPECT_TRUE(hasFinding(findings, LintCode::MissingRelocation));
}

TEST(Lint, BranchToNonexistentBlockIsAnError) {
    Module module;
    Function fn;
    fn.name = "main";
    BasicBlock block;
    block.label = "entry";
    block.insts.push_back(Instruction{Opcode::Beq, 0, 1, 2, 0});
    block.insts.push_back(Instruction{Opcode::Halt, 0, 0, 0, 0});
    Relocation reloc;
    reloc.instIndex = 0;
    reloc.kind = RelocKind::BlockTarget;
    reloc.targetBlock = 5; // not a block start — the function has one block
    block.relocs.push_back(reloc);
    fn.blocks.push_back(block);
    module.functions.push_back(fn);
    const auto findings = lintModule(module);
    EXPECT_TRUE(hasFinding(findings, LintCode::BadRelocation));
    // And lint collects findings instead of throwing like validate().
    EXPECT_THROW(module.validate(), std::invalid_argument);
}

TEST(Lint, UnreachableBlockIsAWarningWithDeadWordCount) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto dead = f.newBlock("dead");
    auto live = f.newBlock("live");
    f.jmp(live);
    f.at(dead).addi(r1, r1, 1).halt();
    f.at(live).halt();
    const Module module = mb.take();
    const auto findings = lintModule(module);
    ASSERT_TRUE(hasFinding(findings, LintCode::UnreachableBlock));
    EXPECT_FALSE(hasLintErrors(findings)); // warning only
}

TEST(Lint, UncalledFunctionIsAWarning) {
    ModuleBuilder mb;
    auto orphan = mb.function("orphan");
    orphan.halt();
    auto f = mb.function("main");
    f.halt();
    mb.setEntry("main");
    const Module module = mb.take();
    const auto findings = lintModule(module);
    EXPECT_TRUE(hasFinding(findings, LintCode::UnreachableFunction));
}

TEST(Lint, IndirectCallsDisableTheCallGraphCheck) {
    ModuleBuilder mb;
    auto orphan = mb.function("orphan");
    orphan.halt();
    auto f = mb.function("main");
    f.addi(r5, r0, 0);
    f.halt();
    mb.setEntry("main");
    Module module = mb.take();
    module.findFunction("main")->blocks[0].insts.back() =
        Instruction{Opcode::Jalr, r0, r5, 0, 0};
    EXPECT_FALSE(hasFinding(lintModule(module), LintCode::UnreachableFunction));
}

TEST(Lint, MaxPlaceableBlockWordsMergesAcrossWraparound) {
    FaultMap clean(4, 8);
    EXPECT_EQ(maxPlaceableBlockWords(clean), 32u);
    FaultMap map(4, 8); // 32 words
    map.setFaultyFlat(10);
    map.setFaultyFlat(20);
    // Runs: [0,10) = 10, [11,20) = 9, [21,32) = 11; Algorithm 1 wraps, so
    // [21,32)+[0,10) is one 21-word modular run.
    EXPECT_EQ(maxPlaceableBlockWords(map), 21u);
    map.setFaultyFlat(0);
    EXPECT_EQ(maxPlaceableBlockWords(map), 11u);
}

// ------------------------------------------------------------ VerifyReport

TEST(Verify, ReportCombinesLintAndProof) {
    Module module = buildBenchmark("qsort", WorkloadScale::Tiny);
    applyBbrTransforms(module);
    const FaultMapGenerator generator;
    Rng rng(3);
    const FaultMap map = generator.generate(rng, 440_mV, 1024, 8);
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    const LinkOutput out = link(module, options);
    const VerifyReport report = verifyImage(module, out.image, map);
    EXPECT_TRUE(report.ok()) << formatReport(report);
    EXPECT_TRUE(report.proof.verified);
}

} // namespace
} // namespace voltcache
