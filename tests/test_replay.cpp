// Record-once / replay-many engine (core/replay.h, cpu/arch_trace.h):
//   * trace encoding round-trips (zigzag, varints, chunk boundaries, the
//     trailing partial control-flow byte, byte-cap overflow),
//   * the headline equivalence property — for every scheme x voltage x seed,
//     replaySystem() equals simulateSystem() field-for-field, and
//   * sweep-level integration: the exported JSON is byte-identical with
//     replay on vs off (any thread count), the byte cap falls back to
//     execution-driven legs without changing results, and the progress
//     ticks account every leg as replayed or executed.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "compiler/passes.h"
#include "core/replay.h"
#include "core/report.h"
#include "core/sweep.h"
#include "core/system.h"
#include "cpu/arch_trace.h"
#include "power/dvfs.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using literals::operator""_mV;

// ---------------------------------------------------------------- encoding

TEST(ReplayTrace, ZigzagRoundTrip) {
    const std::int32_t values[] = {0,  1,          -1,         63,         -64,
                                   64, 2147483647, -2147483647, -2147483648};
    for (const std::int32_t v : values) {
        EXPECT_EQ(detail::unzigzag(detail::zigzag(v)), v) << v;
    }
    // Small magnitudes map to small codes (the property varints rely on).
    EXPECT_EQ(detail::zigzag(0), 0U);
    EXPECT_EQ(detail::zigzag(-1), 1U);
    EXPECT_EQ(detail::zigzag(1), 2U);
}

TEST(ReplayTrace, StreamsRoundTripAcrossChunkBoundaries) {
    ArchTrace trace;
    // Enough multi-byte varints to cross several 64KB chunks, plus a
    // control-flow record count that is NOT a multiple of four so the
    // trailing partial byte path is exercised.
    constexpr std::uint32_t kRecords = 150'003;
    std::vector<std::uint32_t> dataAddrs;
    std::vector<std::uint32_t> jalrTargets;
    std::uint32_t addr = 0x00100000;
    std::uint32_t target = 0x400;
    for (std::uint32_t i = 0; i < kRecords; ++i) {
        trace.putCf((i % 3) == 0, (i % 5) != 0);
        addr += (i % 7) * 4 + ((i % 11) == 0 ? 1u << 20 : 0); // large deltas too
        dataAddrs.push_back(addr);
        trace.putDataAddr(addr);
        if (i % 4 == 0) {
            target = (target + i * 4) & ~3U;
            jalrTargets.push_back(target);
            trace.putJalrTarget(target);
        }
    }
    ASSERT_GT(trace.payloadBytes(), 3 * ChunkedBytes::kChunkBytes);
    trace.finalize(true, 42, 0, 0x400, 1024);

    ArchTrace::Cursor cursor(trace);
    std::size_t jalrIdx = 0;
    for (std::uint32_t i = 0; i < kRecords; ++i) {
        const CfRecord cf = cursor.nextCf();
        EXPECT_EQ(cf.taken, (i % 3) == 0) << i;
        EXPECT_EQ(cf.correct, (i % 5) != 0) << i;
        EXPECT_EQ(cursor.nextDataAddr(), dataAddrs[i]) << i;
        if (i % 4 == 0) {
            EXPECT_EQ(cursor.nextJalrTarget(), jalrTargets[jalrIdx++]);
        }
    }
    EXPECT_TRUE(cursor.fullyConsumed());
    EXPECT_FALSE(trace.overflowed());
    EXPECT_TRUE(trace.finalized());
    EXPECT_EQ(trace.checksum(), 42);
    EXPECT_TRUE(trace.halted());
}

TEST(ReplayTrace, ByteCapMarksOverflow) {
    ArchTrace trace(/*byteCap=*/8);
    for (std::uint32_t i = 0; i < 64; ++i) trace.putDataAddr(i * 4096);
    EXPECT_TRUE(trace.overflowed());

    ArchTrace uncapped(/*byteCap=*/0);
    for (std::uint32_t i = 0; i < 64; ++i) uncapped.putDataAddr(i * 4096);
    EXPECT_FALSE(uncapped.overflowed());
}

// ------------------------------------------------------------- equivalence

#define EXPECT_FIELD_EQ(field) EXPECT_EQ(exec.field, replayed.field) << where

void expectSameResult(const SystemResult& exec, const SystemResult& replayed,
                      const std::string& where) {
    EXPECT_FIELD_EQ(linkFailed);
    EXPECT_FIELD_EQ(checksum);

    EXPECT_FIELD_EQ(run.instructions);
    EXPECT_FIELD_EQ(run.cycles);
    EXPECT_FIELD_EQ(run.halted);
    EXPECT_FIELD_EQ(run.loads);
    EXPECT_FIELD_EQ(run.stores);
    EXPECT_FIELD_EQ(run.condBranches);
    EXPECT_FIELD_EQ(run.takenBranches);
    EXPECT_FIELD_EQ(run.mispredicts);
    EXPECT_FIELD_EQ(run.ifetchStallCycles);
    EXPECT_FIELD_EQ(run.dmemStallCycles);
    EXPECT_FIELD_EQ(run.branchStallCycles);
    EXPECT_FIELD_EQ(run.execStallCycles);
    EXPECT_FIELD_EQ(run.activity.instructions);
    EXPECT_FIELD_EQ(run.activity.cycles);
    EXPECT_FIELD_EQ(run.activity.l1iAccesses);
    EXPECT_FIELD_EQ(run.activity.l1dAccesses);
    EXPECT_FIELD_EQ(run.activity.l2Accesses);
    EXPECT_FIELD_EQ(run.activity.l2WriteThroughs);
    EXPECT_FIELD_EQ(run.activity.dramAccesses);
    EXPECT_FIELD_EQ(run.activity.auxAccesses);

    EXPECT_FIELD_EQ(linkStats.blocksPlaced);
    EXPECT_FIELD_EQ(linkStats.gapWords);
    EXPECT_FIELD_EQ(linkStats.imageWords);
    EXPECT_FIELD_EQ(linkStats.codeWords);
    EXPECT_FIELD_EQ(linkStats.largestBlockWords);
    EXPECT_FIELD_EQ(linkStats.scanRestarts);
    EXPECT_FIELD_EQ(linkStats.wrapArounds);

    EXPECT_FIELD_EQ(icacheStats.accesses);
    EXPECT_FIELD_EQ(icacheStats.hits);
    EXPECT_FIELD_EQ(icacheStats.lineMisses);
    EXPECT_FIELD_EQ(icacheStats.wordMisses);
    EXPECT_FIELD_EQ(icacheStats.l2Reads);
    EXPECT_FIELD_EQ(dcacheStats.accesses);
    EXPECT_FIELD_EQ(dcacheStats.hits);
    EXPECT_FIELD_EQ(dcacheStats.lineMisses);
    EXPECT_FIELD_EQ(dcacheStats.wordMisses);
    EXPECT_FIELD_EQ(dcacheStats.l2Reads);

    // Doubles must match bit-for-bit: both paths run the same accounting
    // code over identical counts, so exact == is the contract, not a tol.
    EXPECT_FIELD_EQ(epi);
    EXPECT_FIELD_EQ(runtimeSeconds);
    EXPECT_FIELD_EQ(energyBreakdown.coreDynamic);
    EXPECT_FIELD_EQ(energyBreakdown.l1Dynamic);
    EXPECT_FIELD_EQ(energyBreakdown.l2Dynamic);
    EXPECT_FIELD_EQ(energyBreakdown.dramDynamic);
    EXPECT_FIELD_EQ(energyBreakdown.auxDynamic);
    EXPECT_FIELD_EQ(energyBreakdown.coreL1Static);
    EXPECT_FIELD_EQ(energyBreakdown.l2Static);
}

#undef EXPECT_FIELD_EQ

struct Fixture {
    Module module;
    Module bbrModule;
    TraceCache traces;
};

Fixture makeFixture(const std::string& benchmark) {
    Fixture fx;
    fx.module = buildBenchmark(benchmark, WorkloadScale::Tiny);
    fx.bbrModule = fx.module;
    applyBbrTransforms(fx.bbrModule);

    SystemConfig record;
    record.scheme = SchemeKind::Conventional760;
    record.op = DvfsTable::vccminBaseline();
    SystemResult ignored;
    fx.traces.plain = recordReplaySource(fx.module, record, 0, ignored);
    fx.traces.bbr = recordReplaySource(fx.bbrModule, record, 0, ignored);
    return fx;
}

const std::vector<SchemeKind>& allSchemes() {
    static const std::vector<SchemeKind> kinds = {
        SchemeKind::DefectFree,        SchemeKind::Conventional760,
        SchemeKind::Robust8T,          SchemeKind::SimpleWordDisable,
        SchemeKind::WilkersonPlus,     SchemeKind::FbaPlus,
        SchemeKind::IdcPlus,           SchemeKind::FfwBbr,
    };
    return kinds;
}

// The headline property: replay is bit-identical to execution for every
// scheme at a high / mid / floor operating point over many chips. (Table II
// has no 600mV row; 560mV is the nearest mid-grid point.)
TEST(ReplayEquivalence, AllSchemesVoltagesSeeds) {
    const Fixture fx = makeFixture("basicmath");
    for (const SchemeKind scheme : allSchemes()) {
        for (const int mv : {760, 560, 400}) {
            for (std::uint64_t seed = 1; seed <= 20; ++seed) {
                SystemConfig config;
                config.scheme = scheme;
                config.op = DvfsTable::at(Voltage::fromMillivolts(mv));
                config.faultMapSeed = seed;
                const SystemResult exec =
                    simulateSystem(fx.module, &fx.bbrModule, config);
                const SystemResult replayed =
                    replaySystem(&fx.bbrModule, config, fx.traces);
                const std::string where = std::string(schemeName(scheme)) + " @" +
                                          std::to_string(mv) + "mV seed " +
                                          std::to_string(seed);
                expectSameResult(exec, replayed, where);
            }
        }
    }
}

// Spot-check a second benchmark so the property is not basicmath-shaped.
TEST(ReplayEquivalence, SecondBenchmarkSpotCheck) {
    const Fixture fx = makeFixture("crc32");
    for (const SchemeKind scheme :
         {SchemeKind::SimpleWordDisable, SchemeKind::FfwBbr}) {
        for (std::uint64_t seed = 1; seed <= 5; ++seed) {
            SystemConfig config;
            config.scheme = scheme;
            config.op = DvfsTable::at(400_mV);
            config.faultMapSeed = seed;
            const SystemResult exec = simulateSystem(fx.module, &fx.bbrModule, config);
            const SystemResult replayed = replaySystem(&fx.bbrModule, config, fx.traces);
            const std::string where = std::string(schemeName(scheme)) + " crc32 seed " +
                                      std::to_string(seed);
            expectSameResult(exec, replayed, where);
        }
    }
}

// ---------------------------------------------------------------- sweeps

SweepConfig sweepConfig() {
    SweepConfig config;
    config.benchmarks = {"crc32", "basicmath"};
    config.schemes = {SchemeKind::Robust8T, SchemeKind::SimpleWordDisable,
                      SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(560_mV), DvfsTable::at(400_mV)};
    config.trials = 3;
    config.scale = WorkloadScale::Tiny;
    config.threads = 1;
    return config;
}

std::string exportJson(const SweepResult& result, const SweepConfig& config) {
    SweepExportMeta meta;
    meta.version = "replay-test"; // fixed: exclude git describe from the diff
    meta.seed = config.baseSeed;
    meta.trials = config.trials;
    meta.scale = "tiny";
    meta.benchmarks = config.benchmarks;
    return sweepResultToJson(result, meta);
}

TEST(ReplaySweep, JsonByteIdenticalReplayVsExecution) {
    SweepConfig exec = sweepConfig();
    exec.useReplay = false;
    const std::string execJson = exportJson(runSweep(exec), exec);

    for (const unsigned threads : {1u, 2u, 8u}) {
        SweepConfig replay = sweepConfig();
        replay.useReplay = true;
        replay.threads = threads;
        const std::string replayJson = exportJson(runSweep(replay), replay);
        EXPECT_EQ(execJson, replayJson) << "replay sweep diverges at --threads "
                                        << threads;
    }
}

// --no-batch is the escape hatch when the batched engine is suspected: it
// must stay anchored to execution-driven simulation, not to the batched
// path, so the three modes form one byte-identical equivalence class.
TEST(ReplaySweep, NoBatchJsonByteIdenticalToExecution) {
    SweepConfig exec = sweepConfig();
    exec.useReplay = false;
    const std::string execJson = exportJson(runSweep(exec), exec);

    for (const unsigned threads : {1u, 2u, 8u}) {
        SweepConfig replay = sweepConfig();
        replay.useBatch = false;
        replay.threads = threads;
        const std::string replayJson = exportJson(runSweep(replay), replay);
        EXPECT_EQ(execJson, replayJson)
            << "--no-batch replay diverges from execution at --threads " << threads;
    }
}

TEST(ReplaySweep, ProgressAccountsEveryLeg) {
    SweepConfig config = sweepConfig();
    SweepProgress last;
    config.onProgress = [&last](const SweepProgress& p) { last = p; };

    (void)runSweep(config);
    EXPECT_EQ(last.completed, last.total);
    EXPECT_GT(last.legsTotal, 0U);
    EXPECT_EQ(last.legsCompleted, last.legsTotal);
    EXPECT_EQ(last.legsReplayed + last.legsExecuted, last.legsTotal);
    EXPECT_EQ(last.legsReplayed, last.legsTotal); // every scheme leg replayable

    config.useReplay = false;
    (void)runSweep(config);
    EXPECT_EQ(last.legsReplayed, 0U);
    EXPECT_EQ(last.legsExecuted, last.legsTotal);
}

// A byte cap too small for any real trace: recording overflows, the sweep
// logs once and runs execution-driven — and the JSON must not change.
TEST(ReplaySweep, ByteCapOverflowFallsBackToExecution) {
    SweepConfig exec = sweepConfig();
    exec.useReplay = false;
    const std::string execJson = exportJson(runSweep(exec), exec);

    SweepConfig capped = sweepConfig();
    capped.traceByteCap = 16; // bytes — overflows immediately
    SweepProgress last;
    capped.onProgress = [&last](const SweepProgress& p) { last = p; };
    const std::string cappedJson = exportJson(runSweep(capped), capped);

    EXPECT_EQ(execJson, cappedJson);
    EXPECT_EQ(last.legsReplayed, 0U);
    EXPECT_EQ(last.legsExecuted, last.legsTotal);
}

} // namespace
} // namespace voltcache
