// Tests for the cache substrate: address mapping, the LRU tag array, and
// the L2 model (Table I parameters).
#include <gtest/gtest.h>

#include "cache/address.h"
#include "cache/l2_cache.h"
#include "cache/tag_array.h"
#include "common/contracts.h"

namespace voltcache {
namespace {

TEST(AddressMapper, PaperL1Geometry) {
    const AddressMapper mapper{CacheOrganization{}};
    // Address 0x00012345 -> block 0x91A, set 0x1A... verify piecewise.
    EXPECT_EQ(mapper.wordOffset(0x24), 1u);
    EXPECT_EQ(mapper.set(0x20), 1u);
    EXPECT_EQ(mapper.set(256 * 32), 0u); // wraps after 256 sets
    EXPECT_EQ(mapper.tag(256 * 32), 1u);
    EXPECT_EQ(mapper.blockAddress(0x40), 2u);
}

TEST(AddressMapper, DirectWayFromTagLsbs) {
    const AddressMapper mapper{CacheOrganization{}};
    // Way = tag mod 4 (Fig. 7). Tag increments every 8KB (256 sets * 32B).
    EXPECT_EQ(mapper.directWay(0x0000), 0u);
    EXPECT_EQ(mapper.directWay(0x2000), 1u);
    EXPECT_EQ(mapper.directWay(0x4000), 2u);
    EXPECT_EQ(mapper.directWay(0x6000), 3u);
    EXPECT_EQ(mapper.directWay(0x8000), 0u);
}

TEST(AddressMapper, DirectMapFlatIndexEqualsModuloCacheWords) {
    // The BBR invariant: in DM mode, the physical flat word index equals
    // wordAddr mod cacheWords for every address.
    const AddressMapper mapper{CacheOrganization{}};
    for (std::uint32_t addr = 0; addr < 3 * 32 * 1024; addr += 4) {
        const std::uint32_t set = mapper.set(addr);
        const std::uint32_t way = mapper.directWay(addr);
        const std::uint32_t flat =
            mapper.physicalLine(set, way) * mapper.wordsPerBlock() + mapper.wordOffset(addr);
        EXPECT_EQ(flat, (addr / 4) % 8192) << std::hex << addr;
    }
}

TEST(TagArray, MissThenHit) {
    TagArray tags(4, 2);
    EXPECT_FALSE(tags.lookup(0, 7).hit);
    tags.fill(0, 7);
    const auto hit = tags.lookup(0, 7);
    EXPECT_TRUE(hit.hit);
    EXPECT_TRUE(tags.valid(0, hit.way));
    EXPECT_EQ(tags.tagAt(0, hit.way), 7u);
}

TEST(TagArray, LruEvictsLeastRecentlyUsed) {
    TagArray tags(1, 2);
    tags.fill(0, 1);
    tags.fill(0, 2);
    tags.touch(0, tags.lookup(0, 1).way); // 1 is now MRU
    const auto fill = tags.fill(0, 3);    // must evict 2
    EXPECT_TRUE(fill.evictedValid);
    EXPECT_EQ(fill.evictedTag, 2u);
    EXPECT_TRUE(tags.lookup(0, 1).hit);
    EXPECT_FALSE(tags.lookup(0, 2).hit);
}

TEST(TagArray, InvalidWaysFillFirst) {
    TagArray tags(1, 4);
    tags.fill(0, 1);
    const auto fill = tags.fill(0, 2);
    EXPECT_FALSE(fill.evictedValid);
}

TEST(TagArray, WayMaskRestrictsVictims) {
    TagArray tags(1, 4);
    for (std::uint32_t t = 0; t < 4; ++t) tags.fill(0, t + 10);
    const auto fill = tags.fill(0, 99, 0b0100); // only way 2 allowed
    EXPECT_EQ(fill.way, 2u);
    EXPECT_THROW((void)tags.fill(0, 100, 0), ContractViolation);
}

TEST(TagArray, DirectProbeAndFill) {
    TagArray tags(4, 4);
    EXPECT_FALSE(tags.probeWay(2, 3, 5));
    tags.fillAt(2, 3, 5);
    EXPECT_TRUE(tags.probeWay(2, 3, 5));
    EXPECT_FALSE(tags.probeWay(2, 2, 5)); // other way untouched
    tags.invalidate(2, 3);
    EXPECT_FALSE(tags.probeWay(2, 3, 5));
}

TEST(TagArray, InvalidateAllClears) {
    TagArray tags(2, 2);
    tags.fill(0, 1);
    tags.fill(1, 2);
    tags.invalidateAll();
    EXPECT_FALSE(tags.lookup(0, 1).hit);
    EXPECT_FALSE(tags.lookup(1, 2).hit);
}

TEST(L2, DefaultIsTableIConfiguration) {
    const L2Cache l2;
    EXPECT_EQ(l2.config().org.sizeBytes, 512u * 1024u);
    EXPECT_EQ(l2.config().org.associativity, 8u);
    EXPECT_EQ(l2.config().org.blockBytes, 32u);
    EXPECT_EQ(l2.config().hitLatencyCycles, 10u);
}

TEST(L2, MissGoesToDramThenHits) {
    L2Cache::Config config;
    config.dramLatencyCycles = 50;
    L2Cache l2(config);
    const auto miss = l2.read(0x1000);
    EXPECT_FALSE(miss.hit);
    EXPECT_TRUE(miss.dram);
    EXPECT_EQ(miss.latencyCycles, 60u);
    const auto hit = l2.read(0x1010); // same 32B block
    EXPECT_TRUE(hit.hit);
    EXPECT_EQ(hit.latencyCycles, 10u);
    EXPECT_EQ(l2.stats().misses, 1u);
    EXPECT_EQ(l2.stats().accesses(), 2u);
}

TEST(L2, WriteAllocatesAndMarksDirty) {
    L2Cache l2;
    const auto write = l2.write(0x2000);
    EXPECT_FALSE(write.hit);
    // Evicting that line later must cost a writeback. Force eviction by
    // filling the set: addresses that alias set of 0x2000.
    const std::uint32_t setStride = 64 * 1024 * 32 / (64 * 1024) ; // recompute below
    (void)setStride;
    const std::uint32_t sets = l2.config().org.sets();
    std::uint32_t evictions = 0;
    for (std::uint32_t i = 1; i <= 8; ++i) {
        const auto res = l2.read(0x2000 + i * sets * 32);
        if (res.dirtyWriteback) ++evictions;
    }
    EXPECT_EQ(evictions, 1u);
    EXPECT_EQ(l2.stats().writebacks, 1u);
}

TEST(L2, CleanEvictionsDoNotWriteBack) {
    L2Cache l2;
    const std::uint32_t sets = l2.config().org.sets();
    for (std::uint32_t i = 0; i <= 8; ++i) {
        const auto res = l2.read(0x0 + i * sets * 32);
        EXPECT_FALSE(res.dirtyWriteback);
    }
    EXPECT_EQ(l2.stats().writebacks, 0u);
}

TEST(L2, InvalidateAllDropsContentsAndDirtyBits) {
    L2Cache l2;
    l2.write(0x3000);
    l2.invalidateAll();
    const auto res = l2.read(0x3000);
    EXPECT_FALSE(res.hit);
    EXPECT_FALSE(res.dirtyWriteback);
}

TEST(L2, DramLatencyAdjustable) {
    L2Cache l2;
    l2.setDramLatency(123);
    const auto miss = l2.read(0x9000);
    EXPECT_EQ(miss.latencyCycles, 133u);
}

} // namespace
} // namespace voltcache
