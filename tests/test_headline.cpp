// Headline regression guards: the paper's central quantitative claims,
// checked end-to-end on a reduced grid so they run in CI time. These are
// the tests that should break if any model change silently destroys the
// reproduction.
#include <gtest/gtest.h>

#include "core/sweep.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

/// One shared reduced sweep for all headline checks (3 benchmarks spanning
/// the locality spectrum, 3 chips per point, two voltages).
class HeadlineSweep : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        SweepConfig config;
        config.benchmarks = {"crc32", "mcf_r", "basicmath"};
        config.schemes = {SchemeKind::Robust8T, SchemeKind::SimpleWordDisable,
                          SchemeKind::WilkersonPlus, SchemeKind::FbaPlus,
                          SchemeKind::FfwBbr};
        config.points = {DvfsTable::at(560_mV), DvfsTable::at(400_mV)};
        config.trials = 3;
        config.scale = WorkloadScale::Tiny;
        result_ = new SweepResult(runSweep(config));
    }
    static void TearDownTestSuite() {
        delete result_;
        result_ = nullptr;
    }

    static const SweepResult& result() { return *result_; }

private:
    static SweepResult* result_;
};

SweepResult* HeadlineSweep::result_ = nullptr;

TEST_F(HeadlineSweep, DeepScalingSavesEnergy) {
    // The point of the whole exercise: running at 400mV with FFW+BBR costs
    // far less energy per instruction than staying at Vccmin = 760mV.
    const double epi400 = result().cell(SchemeKind::FfwBbr, 400_mV).normEpi.mean();
    EXPECT_LT(epi400, 0.55) << "expected >45% EPI reduction";
    EXPECT_GT(epi400, 0.25) << "below the V^2 bound — energy accounting broken";
}

TEST_F(HeadlineSweep, EpiImprovesMonotonicallyForFfwBbr) {
    // "The only architectural approach that achieves sustained energy
    // reduction as voltage is scaled all the way down to 400mV."
    const double at560 = result().cell(SchemeKind::FfwBbr, 560_mV).normEpi.mean();
    const double at400 = result().cell(SchemeKind::FfwBbr, 400_mV).normEpi.mean();
    EXPECT_LT(at400, at560);
}

TEST_F(HeadlineSweep, ZeroLatencySchemesWinAt560mV) {
    // Before 480mV performance is dominated by L1 latency (Section VI-B).
    const double ffw = result().cell(SchemeKind::FfwBbr, 560_mV).normRuntime.mean();
    const double t8 = result().cell(SchemeKind::Robust8T, 560_mV).normRuntime.mean();
    const double wilk = result().cell(SchemeKind::WilkersonPlus, 560_mV).normRuntime.mean();
    EXPECT_LT(ffw, 1.10);
    EXPECT_GT(t8, ffw + 0.10);
    EXPECT_GT(wilk, ffw + 0.10);
}

TEST_F(HeadlineSweep, SimpleWordDisableCollapsesAt400mV) {
    // After 480mV the increased L2 accesses dominate; simple-wdis bears
    // the brunt (Section VI-B).
    const double wdis400 =
        result().cell(SchemeKind::SimpleWordDisable, 400_mV).normRuntime.mean();
    const double wdis560 =
        result().cell(SchemeKind::SimpleWordDisable, 560_mV).normRuntime.mean();
    EXPECT_GT(wdis400, wdis560 + 0.3);
    // ...and its EPI curve turns non-monotone (Fig. 12's dismissal).
    const double ffw400 = result().cell(SchemeKind::FfwBbr, 400_mV).normRuntime.mean();
    EXPECT_GT(wdis400, ffw400);
}

TEST_F(HeadlineSweep, FfwBbrIsBestSchemeAt400mV) {
    const double ffw = result().cell(SchemeKind::FfwBbr, 400_mV).normRuntime.mean();
    for (const SchemeKind other :
         {SchemeKind::Robust8T, SchemeKind::SimpleWordDisable, SchemeKind::WilkersonPlus,
          SchemeKind::FbaPlus}) {
        EXPECT_LT(ffw, result().cell(other, 400_mV).normRuntime.mean() + 1e-9)
            << schemeName(other);
    }
}

TEST_F(HeadlineSweep, L2TrafficOrderingAt400mV) {
    // Fig. 11: simple-wdis floods the L2; ffw+bbr stays moderate.
    const double wdis = result().cell(SchemeKind::SimpleWordDisable, 400_mV).l2PerKilo.mean();
    const double ffw = result().cell(SchemeKind::FfwBbr, 400_mV).l2PerKilo.mean();
    EXPECT_GT(wdis, 2.0 * ffw);
}

TEST_F(HeadlineSweep, NoUnexpectedYieldLosses) {
    // Only ffw+bbr can lose chips (BBR placement); at these voltages and
    // block sizes losses should be rare.
    for (const auto& [key, cell] : result().cells) {
        if (key.first != SchemeKind::FfwBbr) {
            EXPECT_EQ(cell.linkFailures, 0u) << schemeName(key.first);
        } else {
            EXPECT_LE(cell.linkFailures, cell.runs / 2) << "BBR losing too many chips";
        }
    }
}

} // namespace
} // namespace voltcache
