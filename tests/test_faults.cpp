// Tests for the SRAM failure model, fault maps, and yield analysis
// (paper Section II, Table II, Fig. 2).
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "faults/failure_model.h"
#include "faults/fault_map.h"
#include "faults/yield.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

// ---- FailureModel ----

struct TableIIPoint {
    double mv;
    double log10p;
};

class FailureModelTableII : public ::testing::TestWithParam<TableIIPoint> {};

TEST_P(FailureModelTableII, ReproducesAnchor) {
    const FailureModel model;
    const auto [mv, log10p] = GetParam();
    const double p = model.pFailBit(Voltage::fromMillivolts(mv));
    EXPECT_NEAR(std::log10(p), log10p, 1e-9) << "at " << mv << "mV";
}

INSTANTIATE_TEST_SUITE_P(TableII, FailureModelTableII,
                         ::testing::Values(TableIIPoint{560, -4.0}, TableIIPoint{520, -3.5},
                                           TableIIPoint{480, -3.0}, TableIIPoint{440, -2.5},
                                           TableIIPoint{400, -2.0}));

TEST(FailureModel, MonotoneDecreasingInVoltage) {
    const FailureModel model;
    double prev = 1.0;
    for (int mv = 300; mv <= 1000; mv += 10) {
        const double p = model.pFailBit(Voltage::fromMillivolts(mv));
        EXPECT_LT(p, prev) << "at " << mv << "mV";
        prev = p;
    }
}

TEST(FailureModel, At760mvMatchesYieldCalibration) {
    // log10 p(760mV) was calibrated to 1 - 0.999^(1/262144).
    const FailureModel model;
    const double p = model.pFailBit(760_mV);
    const double target = 1.0 - std::pow(0.999, 1.0 / 262144.0);
    EXPECT_NEAR(p / target, 1.0, 1e-3);
}

TEST(FailureModel, StructureProbabilityComposition) {
    const FailureModel model;
    const double pBit = model.pFailBit(400_mV);
    const double pWord = model.pFailStructure(400_mV, 32);
    EXPECT_NEAR(pWord, 1.0 - std::pow(1.0 - pBit, 32), 1e-12);
    // Fig. 2 granularity ordering: block >> word >> bit.
    const double pBlock = model.pFailStructure(400_mV, 256);
    EXPECT_GT(pBlock, pWord);
    EXPECT_GT(pWord, pBit);
}

TEST(FailureModel, StructureProbabilityAccurateAtTinyP) {
    const FailureModel model;
    const double pWord = model.pFailStructure(760_mV, 32);
    EXPECT_GT(pWord, 0.0);
    EXPECT_NEAR(pWord, 32.0 * model.pFailBit(760_mV), pWord * 0.01);
}

TEST(FailureModel, Robust8TIsShiftedDeeper) {
    const FailureModel m6t;
    const FailureModel m8t(Technology::Node45nm, CellKind::Sram8T);
    EXPECT_LT(m8t.pFailBit(400_mV), m6t.pFailBit(400_mV) * 1e-3);
    // 8T at 400mV behaves like 6T at 760mV (the calibrated shift).
    EXPECT_NEAR(std::log10(m8t.pFailBit(400_mV)), std::log10(m6t.pFailBit(760_mV)), 1e-9);
}

TEST(FailureModel, Node65nmFailsAtHigherVoltage) {
    const FailureModel m45(Technology::Node45nm);
    const FailureModel m65(Technology::Node65nm);
    EXPECT_GT(m65.pFailBit(500_mV), m45.pFailBit(500_mV));
}

// ---- YieldAnalyzer ----

TEST(Yield, Vccmin32KBIs760mV) {
    // The paper's headline yield statement: a 32KB cache must stay above
    // 760mV to keep 999/1000 dies fault-free.
    const YieldAnalyzer analyzer;
    const Voltage vccmin = analyzer.vccmin(granularity::kCache32KB);
    EXPECT_NEAR(vccmin.millivolts(), 760.0, 1.0);
}

TEST(Yield, SmallerStructuresScaleDeeper) {
    const YieldAnalyzer analyzer;
    const Voltage word = analyzer.vccmin(granularity::kWord4B);
    const Voltage block = analyzer.vccmin(granularity::kBlock32B);
    const Voltage cache = analyzer.vccmin(granularity::kCache32KB);
    EXPECT_LT(word.volts(), block.volts());
    EXPECT_LT(block.volts(), cache.volts());
}

TEST(Yield, YieldAtVccminMeetsTarget) {
    const YieldAnalyzer analyzer;
    const Voltage vccmin = analyzer.vccmin(granularity::kCache32KB);
    EXPECT_GE(analyzer.yield(vccmin, granularity::kCache32KB), kPaperYieldTarget);
    const Voltage below = Voltage::fromMillivolts(vccmin.millivolts() - 20);
    EXPECT_LT(analyzer.yield(below, granularity::kCache32KB), kPaperYieldTarget);
}

TEST(Yield, MonotoneInVoltageAndSize) {
    const YieldAnalyzer analyzer;
    EXPECT_GT(analyzer.yield(700_mV, 1000), analyzer.yield(500_mV, 1000));
    EXPECT_GT(analyzer.yield(500_mV, 100), analyzer.yield(500_mV, 10000));
}

// ---- FaultMap ----

TEST(FaultMap, SetAndQuery) {
    FaultMap map(4, 8);
    EXPECT_TRUE(map.clean());
    map.setFaulty(1, 3);
    EXPECT_TRUE(map.isFaulty(1, 3));
    EXPECT_FALSE(map.isFaulty(1, 2));
    EXPECT_EQ(map.totalFaultyWords(), 1u);
    map.setFaulty(1, 3, false);
    EXPECT_TRUE(map.clean());
}

TEST(FaultMap, FlatIndexingMatchesLineMajorOrder) {
    FaultMap map(4, 8);
    map.setFaulty(2, 5);
    EXPECT_TRUE(map.isFaultyFlat(2 * 8 + 5));
    map.setFaultyFlat(31);
    EXPECT_TRUE(map.isFaulty(3, 7));
}

TEST(FaultMap, LineMaskAndFreeCount) {
    FaultMap map(2, 8);
    map.setFaulty(0, 0);
    map.setFaulty(0, 7);
    EXPECT_EQ(map.lineFaultMask(0), 0x81u);
    EXPECT_EQ(map.faultFreeCount(0), 6u);
    EXPECT_EQ(map.faultFreeCount(1), 8u);
    EXPECT_NEAR(map.effectiveCapacityFraction(), 14.0 / 16.0, 1e-12);
}

TEST(FaultMap, SetFaultyIdempotent) {
    FaultMap map(1, 8);
    map.setFaulty(0, 2);
    map.setFaulty(0, 2);
    EXPECT_EQ(map.totalFaultyWords(), 1u);
}

TEST(FaultMap, ChunksSplitAtFaults) {
    FaultMap map(1, 8);
    map.setFaulty(0, 3);
    const auto chunks = map.faultFreeChunks();
    ASSERT_EQ(chunks.size(), 2u);
    EXPECT_EQ(chunks[0].startWord, 0u);
    EXPECT_EQ(chunks[0].length, 3u);
    EXPECT_EQ(chunks[1].startWord, 4u);
    EXPECT_EQ(chunks[1].length, 4u);
}

TEST(FaultMap, ChunksOfCleanMapIsOneRun) {
    FaultMap map(2, 8);
    const auto chunks = map.faultFreeChunks();
    ASSERT_EQ(chunks.size(), 1u);
    EXPECT_EQ(chunks[0].length, 16u);
}

TEST(FaultMap, ChunksCoverExactlyTheFaultFreeWords) {
    Rng rng(21);
    FaultMap map(32, 8);
    for (std::uint32_t w = 0; w < map.totalWords(); ++w) {
        if (rng.nextBernoulli(0.2)) map.setFaultyFlat(w);
    }
    std::uint32_t covered = 0;
    std::uint32_t prevEnd = 0;
    for (const auto& chunk : map.faultFreeChunks()) {
        EXPECT_GE(chunk.startWord, prevEnd);
        for (std::uint32_t i = 0; i < chunk.length; ++i) {
            EXPECT_FALSE(map.isFaultyFlat(chunk.startWord + i));
        }
        // The word before and after each chunk must be faulty or a border.
        if (chunk.startWord > 0) {
            EXPECT_TRUE(map.isFaultyFlat(chunk.startWord - 1));
        }
        if (chunk.startWord + chunk.length < map.totalWords()) {
            EXPECT_TRUE(map.isFaultyFlat(chunk.startWord + chunk.length));
        }
        covered += chunk.length;
        prevEnd = chunk.startWord + chunk.length;
    }
    EXPECT_EQ(covered, map.totalFaultFreeWords());
}

// ---- FaultMapGenerator ----

class GeneratorStatistics : public ::testing::TestWithParam<double> {};

TEST_P(GeneratorStatistics, FaultRateMatchesWordProbability) {
    const double mv = GetParam();
    const FailureModel model;
    const FaultMapGenerator generator(model);
    const Voltage v = Voltage::fromMillivolts(mv);
    const double pWord = model.pFailStructure(v, 32);

    Rng rng(1234);
    std::uint64_t faulty = 0;
    std::uint64_t total = 0;
    for (int trial = 0; trial < 20; ++trial) {
        const FaultMap map = generator.generate(rng, v, 1024, 8);
        faulty += map.totalFaultyWords();
        total += map.totalWords();
    }
    const double observed = static_cast<double>(faulty) / static_cast<double>(total);
    // 20 x 8192 words: allow 4 standard deviations.
    const double sigma = std::sqrt(pWord * (1 - pWord) / static_cast<double>(total));
    EXPECT_NEAR(observed, pWord, 4.0 * sigma + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Voltages, GeneratorStatistics,
                         ::testing::Values(560.0, 480.0, 400.0));

TEST(FaultMapGenerator, DeterministicForSeed) {
    const FaultMapGenerator generator;
    Rng a(9);
    Rng b(9);
    const FaultMap mapA = generator.generate(a, 400_mV, 64, 8);
    const FaultMap mapB = generator.generate(b, 400_mV, 64, 8);
    EXPECT_EQ(mapA, mapB);
}

TEST(FaultMapGenerator, CleanAtHighVoltage) {
    const FaultMapGenerator generator;
    Rng rng(9);
    const FaultMap map = generator.generate(rng, Voltage::fromMillivolts(1000), 1024, 8);
    EXPECT_TRUE(map.clean());
}

// ---- geometric / Bernoulli coupling at the extremes and across maps ----

TEST(FaultMapGenerator, PZeroExtremeMatchesReferenceAndDrawsNothing) {
    // pWordScale 0 forces p = 0 exactly: both paths must return a clean map
    // without consuming ANY draws (the streams stay aligned afterwards).
    const FaultMapGenerator generator(FailureModel{}, 32, 0.0);
    Rng a(7);
    Rng b(7);
    EXPECT_TRUE(generator.generate(a, 400_mV, 16, 8).clean());
    EXPECT_TRUE(generator.generateBernoulliReference(b, 400_mV, 16, 8).clean());
    EXPECT_EQ(a.nextDouble(), b.nextDouble());
}

TEST(FaultMapGenerator, POneExtremeMatchesReferenceAndDrawsNothing) {
    // A huge scale clamps p to 1: all-faulty map, zero draws, both paths.
    const FaultMapGenerator generator(FailureModel{}, 32, 1e12);
    Rng a(7);
    Rng b(7);
    const FaultMap fast = generator.generate(a, 400_mV, 16, 8);
    const FaultMap slow = generator.generateBernoulliReference(b, 400_mV, 16, 8);
    EXPECT_EQ(fast.totalFaultyWords(), fast.totalWords());
    EXPECT_EQ(fast, slow);
    EXPECT_EQ(a.nextDouble(), b.nextDouble());
}

TEST(FaultMapGenerator, SequentialMapsStayCoupledAcrossOneStream) {
    // The sweep draws the D-cache map then the I-cache map from ONE stream
    // (detail::generateChipFaultMaps). The coupling must therefore hold for
    // the second map too, which requires the two paths to consume identical
    // draw counts even when a map's final word is faulty (at 400mV that
    // happens for ~27.5% of maps, so 64 seeds exercise it many times).
    const FaultMapGenerator generator;
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        Rng fast(seed);
        Rng slow(seed);
        const FaultMap fast1 = generator.generate(fast, 400_mV, 16, 8);
        const FaultMap fast2 = generator.generate(fast, 400_mV, 16, 8);
        const FaultMap slow1 = generator.generateBernoulliReference(slow, 400_mV, 16, 8);
        const FaultMap slow2 = generator.generateBernoulliReference(slow, 400_mV, 16, 8);
        EXPECT_EQ(fast1, slow1) << "seed " << seed;
        EXPECT_EQ(fast2, slow2) << "seed " << seed << " (draw-count desync)";
    }
}

TEST(FaultMapGenerator, SequentialCouplingAtExtremeVoltages) {
    const FaultMapGenerator generator;
    // 1400mV: p is astronomically small — clean maps, one draw each.
    for (const double mv : {1400.0, 320.0}) {
        const Voltage v = Voltage::fromMillivolts(mv);
        for (std::uint64_t seed = 1; seed <= 16; ++seed) {
            Rng fast(seed);
            Rng slow(seed);
            const FaultMap fast1 = generator.generate(fast, v, 8, 8);
            const FaultMap fast2 = generator.generate(fast, v, 8, 8);
            const FaultMap slow1 = generator.generateBernoulliReference(slow, v, 8, 8);
            const FaultMap slow2 = generator.generateBernoulliReference(slow, v, 8, 8);
            EXPECT_EQ(fast1, slow1) << mv << "mV seed " << seed;
            EXPECT_EQ(fast2, slow2) << mv << "mV seed " << seed;
        }
    }
}

TEST(FaultMapGenerator, ScaledRateShiftsTheObservedFaultRate) {
    // The --corrupt-mapgen knob: scale 2 at 400mV must roughly double the
    // word fault rate (clamped composition, so only approximately 2x).
    const FailureModel model;
    const FaultMapGenerator honest(model);
    const FaultMapGenerator corrupted(model, 32, 2.0);
    Rng a(5);
    Rng b(5);
    std::uint64_t honestFaults = 0;
    std::uint64_t corruptedFaults = 0;
    for (int trial = 0; trial < 10; ++trial) {
        honestFaults += honest.generate(a, 400_mV, 1024, 8).totalFaultyWords();
        corruptedFaults += corrupted.generate(b, 400_mV, 1024, 8).totalFaultyWords();
    }
    EXPECT_GT(corruptedFaults, honestFaults + honestFaults / 2);
}

} // namespace
} // namespace voltcache
