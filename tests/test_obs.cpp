// Tests for the observability subsystem: the JSON writer, the metrics
// registry (handles, sharding, histograms), the trace sink ring, the
// instrumentation points in the schemes / linker, observer multiplexing,
// the L2-read reconciliation invariant, and the sweep JSON golden file.
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/contracts.h"
#include "common/json.h"
#include "compiler/passes.h"
#include "core/report.h"
#include "core/sweep.h"
#include "core/system.h"
#include "linker/linker.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "schemes/bbr.h"
#include "schemes/ffw.h"
#include "workload/locality.h"
#include "workload/workload.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

// ---- JsonWriter ----

TEST(JsonWriter, EscapesQuotesBackslashesAndControlChars) {
    JsonWriter json;
    json.value(std::string_view("a\"b\\c\nd\te\x01"
                                "f"));
    EXPECT_EQ(json.str(), "\"a\\\"b\\\\c\\nd\\te\\u0001f\"");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
    JsonWriter json;
    json.beginArray();
    json.value(std::numeric_limits<double>::quiet_NaN());
    json.value(std::numeric_limits<double>::infinity());
    json.value(-std::numeric_limits<double>::infinity());
    json.value(1.5);
    json.endArray();
    EXPECT_EQ(json.str(), "[null,null,null,1.5]");
}

TEST(JsonWriter, NestedObjectsAndArrays) {
    JsonWriter json;
    json.beginObject();
    json.member("name", "x");
    json.key("values");
    json.beginArray();
    json.value(std::uint64_t{1});
    json.value(std::int64_t{-2});
    json.value(true);
    json.null();
    json.endArray();
    json.key("inner");
    json.beginObject();
    json.member("d", 0.25);
    json.endObject();
    json.endObject();
    EXPECT_EQ(json.str(),
              R"({"name":"x","values":[1,-2,true,null],"inner":{"d":0.25}})");
}

TEST(JsonWriter, MisuseTripsContracts) {
    {
        JsonWriter json;
        json.beginObject();
        EXPECT_THROW(json.value(std::uint64_t{1}), ContractViolation) << "value needs a key";
    }
    {
        JsonWriter json;
        EXPECT_THROW((void)json.str(), ContractViolation) << "empty document";
    }
    {
        JsonWriter json;
        json.beginArray();
        EXPECT_THROW((void)json.str(), ContractViolation) << "unclosed scope";
    }
}

// ---- Metrics registry ----

// Counters resolved twice from the same thread share one cell.
TEST(Metrics, CounterHandleAccumulates) {
    obs::MetricsRegistry registry;
    obs::Counter a = registry.counter("c", {{"k", "v"}});
    obs::Counter b = registry.counter("c", {{"k", "v"}});
    a.add();
    b.add(4);
    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 1u);
    EXPECT_EQ(snapshot[0].name, "c");
    EXPECT_EQ(snapshot[0].kind, obs::MetricKind::Counter);
    EXPECT_EQ(snapshot[0].count, 5u);
    ASSERT_EQ(snapshot[0].labels.size(), 1u);
    EXPECT_EQ(snapshot[0].labels[0].first, "k");
    EXPECT_EQ(snapshot[0].labels[0].second, "v");
}

TEST(Metrics, PerThreadShardsMergeAtSnapshot) {
    obs::MetricsRegistry registry;
    constexpr int kThreads = 4;
    constexpr int kAdds = 1000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&registry] {
            obs::Counter counter = registry.counter("threads.count");
            for (int i = 0; i < kAdds; ++i) counter.add();
        });
    }
    for (auto& worker : workers) worker.join();
    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 1u);
    EXPECT_EQ(snapshot[0].count, static_cast<std::uint64_t>(kThreads) * kAdds);
}

TEST(Metrics, HistogramLog2Buckets) {
    EXPECT_EQ(obs::histogramBucket(0), 0u);
    EXPECT_EQ(obs::histogramBucket(1), 1u);
    EXPECT_EQ(obs::histogramBucket(2), 2u);
    EXPECT_EQ(obs::histogramBucket(3), 2u);
    EXPECT_EQ(obs::histogramBucket(4), 3u);
    EXPECT_EQ(obs::histogramBucket(std::numeric_limits<std::uint64_t>::max()), 64u);
    EXPECT_EQ(obs::histogramBucketLow(0), 0u);
    EXPECT_EQ(obs::histogramBucketLow(1), 1u);
    EXPECT_EQ(obs::histogramBucketLow(3), 4u);

    obs::MetricsRegistry registry;
    obs::Histogram histogram = registry.histogram("h");
    for (std::uint64_t v : {0u, 1u, 2u, 3u, 8u}) histogram.observe(v);
    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 1u);
    EXPECT_EQ(snapshot[0].kind, obs::MetricKind::Histogram);
    EXPECT_EQ(snapshot[0].count, 5u);
    EXPECT_EQ(snapshot[0].sum, 14u);
    EXPECT_DOUBLE_EQ(snapshot[0].value, 14.0 / 5.0);
    ASSERT_GE(snapshot[0].buckets.size(), 5u);
    EXPECT_EQ(snapshot[0].buckets[0], 1u); // 0
    EXPECT_EQ(snapshot[0].buckets[1], 1u); // 1
    EXPECT_EQ(snapshot[0].buckets[2], 2u); // 2, 3
    EXPECT_EQ(snapshot[0].buckets[3], 0u);
    EXPECT_EQ(snapshot[0].buckets[4], 1u); // 8
}

TEST(Metrics, GaugeLastWriteWins) {
    obs::MetricsRegistry registry;
    obs::Gauge gauge = registry.gauge("g");
    gauge.set(1.0);
    gauge.set(2.5);
    const auto snapshot = registry.snapshot();
    ASSERT_EQ(snapshot.size(), 1u);
    EXPECT_EQ(snapshot[0].kind, obs::MetricKind::Gauge);
    EXPECT_DOUBLE_EQ(snapshot[0].value, 2.5);
}

TEST(Metrics, KindMismatchIsContractViolation) {
    obs::MetricsRegistry registry;
    (void)registry.counter("m");
    EXPECT_THROW((void)registry.gauge("m"), ContractViolation);
    EXPECT_THROW((void)registry.histogram("m"), ContractViolation);
}

TEST(Metrics, InertHandlesAreSafe) {
    obs::Counter counter;
    obs::Gauge gauge;
    obs::Histogram histogram;
    counter.add();
    gauge.set(1.0);
    histogram.observe(42); // must not crash
}

TEST(Metrics, SnapshotRendersAsJson) {
    obs::MetricsRegistry registry;
    registry.add("a.count", {{"scheme", "ffw+bbr"}}, 3);
    const std::string text = obs::metricsToJson(registry.snapshot());
    EXPECT_NE(text.find("\"a.count\""), std::string::npos);
    EXPECT_NE(text.find("\"ffw+bbr\""), std::string::npos);
    EXPECT_NE(text.find("3"), std::string::npos);
}

// ---- Trace sink ----

/// Current count of a (label-free) counter in the global registry, or 0.
std::uint64_t globalCounterValue(const char* name) {
    for (const auto& metric : obs::MetricsRegistry::global().snapshot()) {
        if (metric.name == name && metric.labels.empty()) return metric.count;
    }
    return 0;
}

TEST(TraceSink, RingOverwritesOldestAndCountsDrops) {
    const std::uint64_t droppedBefore = globalCounterValue("obs.trace_dropped_total");
    obs::TraceSink sink(4);
    for (std::int64_t i = 0; i < 6; ++i) {
        sink.record("event", "test", {{"i", i}});
    }
    EXPECT_EQ(sink.recorded(), 6u);
    EXPECT_EQ(sink.dropped(), 2u);
    // Drops are mirrored into the process-wide registry so a truncated trace
    // is detectable without the sink in hand.
    EXPECT_EQ(globalCounterValue("obs.trace_dropped_total"), droppedBefore + 2);
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t k = 0; k < events.size(); ++k) {
        EXPECT_EQ(events[k].ts, k + 2) << "oldest-first, first two overwritten";
        ASSERT_EQ(events[k].argCount, 1u);
        EXPECT_STREQ(events[k].args[0].key, "i");
        EXPECT_EQ(events[k].args[0].value, static_cast<std::int64_t>(k + 2));
    }
}

TEST(TraceSink, ChromeJsonIsWellFormed) {
    obs::TraceSink sink(8);
    sink.record("alpha", "catA", {{"x", 1}});
    sink.record("beta", "catB");
    const std::string json = sink.toChromeJson();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"alpha\""), std::string::npos);
    EXPECT_NE(json.find("\"beta\""), std::string::npos);
    EXPECT_NE(json.find("\"catA\""), std::string::npos);
}

TEST(TraceSink, SpanEventsExportAsCompleteDurations) {
    obs::TraceSink sink(8);
    sink.recordSpan("phase", "prof", sink.epochNs() + 2000, 5000, {{"leg", 3}});
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].phase, obs::TracePhase::Span);
    EXPECT_EQ(events[0].wallUs, 2u);
    EXPECT_EQ(events[0].durUs, 5u);
    const std::string json = sink.toChromeJson();
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
    EXPECT_NE(json.find("\"phase\""), std::string::npos);
}

TEST(TraceSink, SpanStartBeforeSinkClampsToEpoch) {
    obs::TraceSink sink(8);
    sink.recordSpan("early", "prof", 0, 7000);
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].wallUs, 0u) << "pre-epoch start clamps to the trace's t=0";
    EXPECT_EQ(events[0].durUs, 7u);
}

TEST(TraceSink, CounterEventsExportSeriesArgs) {
    obs::TraceSink sink(8);
    sink.recordCounter("sweep.workers", "sweep", {{"active", 3}, {"total", 4}});
    const auto events = sink.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].phase, obs::TracePhase::Counter);
    const std::string json = sink.toChromeJson();
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"active\":3"), std::string::npos);
    EXPECT_NE(json.find("\"total\":4"), std::string::npos);
}

TEST(TraceSink, ScopedAttachRestoresPrevious) {
    obs::TraceSink outer;
    obs::TraceSink inner;
    obs::TraceSink* const before = obs::traceSink();
    {
        obs::ScopedTraceSink outerGuard(&outer);
        EXPECT_EQ(obs::traceSink(), &outer);
        {
            obs::ScopedTraceSink innerGuard(&inner);
            EXPECT_EQ(obs::traceSink(), &inner);
        }
        EXPECT_EQ(obs::traceSink(), &outer);
    }
    EXPECT_EQ(obs::traceSink(), before);
}

// ---- Instrumentation points ----

bool hasEventNamed(const std::vector<obs::TraceEvent>& events, const char* name) {
    for (const auto& event : events) {
        if (std::strcmp(event.name, name) == 0) return true;
    }
    return false;
}

TEST(Instrumentation, FfwRecenterEmitsEventWithWindowBounds) {
    obs::TraceSink sink;
    obs::ScopedTraceSink guard(&sink);
    L2Cache l2;
    FaultMap map(1024, 8);
    map.setFaulty(0, 2); // Fig. 4 frame: window = words 2..6
    map.setFaulty(0, 4);
    map.setFaulty(0, 6);
    FfwDCache dcache(CacheOrganization{}, map, l2);
    (void)dcache.read(0 * 32 + 4 * 4); // fill centered on word 4
    (void)dcache.read(0 * 32 + 0 * 4); // word 0 is outside the window: recenter
    const auto events = sink.events();
    ASSERT_TRUE(hasEventNamed(events, "ffw.recenter"));
    for (const auto& event : events) {
        if (std::strcmp(event.name, "ffw.recenter") != 0) continue;
        EXPECT_STREQ(event.category, "dcache");
        bool sawOldStart = false;
        bool sawNewStart = false;
        for (std::size_t i = 0; i < event.argCount; ++i) {
            if (std::strcmp(event.args[i].key, "old_start") == 0) sawOldStart = true;
            if (std::strcmp(event.args[i].key, "new_start") == 0) sawNewStart = true;
        }
        EXPECT_TRUE(sawOldStart);
        EXPECT_TRUE(sawNewStart);
    }
}

TEST(Instrumentation, BbrFetchMissEmitsEvent) {
    obs::TraceSink sink;
    obs::ScopedTraceSink guard(&sink);
    L2Cache l2;
    BbrICache icache(CacheOrganization{}, FaultMap(1024, 8), l2);
    (void)icache.fetch(0); // cold miss
    EXPECT_TRUE(hasEventNamed(sink.events(), "bbr.fetch_miss"));
}

TEST(Instrumentation, LinkerCountsScansAndEmitsPlacementEvents) {
    obs::TraceSink sink;
    obs::ScopedTraceSink guard(&sink);
    Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
    applyBbrTransforms(module);
    const FaultMapGenerator generator;
    Rng rng(7);
    const FaultMap map = generator.generate(rng, 400_mV, 1024, 8);
    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    const LinkOutput out = link(module, options);
    EXPECT_GT(out.stats.blocksPlaced, 0u);
    // At 400mV most frames hold defects, so the first-fit scan restarts at
    // least occasionally; the counters must be consistent with placement.
    EXPECT_TRUE(hasEventNamed(sink.events(), "link.place"));
}

// ---- Observer multiplexing ----

class CountingObserver final : public TraceObserver {
public:
    void onInstruction(std::uint32_t, const Instruction&) override { ++instructions_; }
    void onDataAccess(std::uint32_t, bool) override { ++accesses_; }
    [[nodiscard]] std::uint64_t instructions() const { return instructions_; }
    [[nodiscard]] std::uint64_t accesses() const { return accesses_; }

private:
    std::uint64_t instructions_ = 0;
    std::uint64_t accesses_ = 0;
};

TEST(Multiplexer, MultipleObserversSeeTheSameRun) {
    const Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);

    LocalityProfiler profiler;
    CountingObserver counting;
    SystemConfig config;
    config.scheme = SchemeKind::FfwBbr;
    config.op = DvfsTable::at(400_mV);
    config.faultMapSeed = 3;
    config.observers = {&profiler, &counting};
    const SystemResult result = simulateSystem(module, &bbrModule, config);
    ASSERT_FALSE(result.linkFailed);
    profiler.finalize();

    EXPECT_EQ(counting.instructions(), result.run.instructions);
    EXPECT_GT(counting.accesses(), 0u);
    EXPECT_GT(profiler.meanSpatialLocality(), 0.0);
}

// ---- L2-read reconciliation (the accounting invariant in simulateSystem) ----

TEST(Reconciliation, L1L2ReadAccountingBalancesAcrossSchemes) {
    const Module module = buildBenchmark("crc32", WorkloadScale::Tiny);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);
    for (const SchemeKind scheme :
         {SchemeKind::Conventional760, SchemeKind::SimpleWordDisable, SchemeKind::FbaPlus,
          SchemeKind::IdcPlus, SchemeKind::FfwBbr}) {
        SystemConfig config;
        config.scheme = scheme;
        config.op = scheme == SchemeKind::Conventional760 ? DvfsTable::vccminBaseline()
                                                          : DvfsTable::at(400_mV);
        config.faultMapSeed = 11;
        // simulateSystem VC_CHECKs the invariant internally; assert it here
        // too so a regression names the scheme.
        const SystemResult result = simulateSystem(module, &bbrModule, config);
        if (result.linkFailed) continue;
        EXPECT_EQ(result.icacheStats.l2Reads + result.dcacheStats.l2Reads,
                  result.run.activity.l2Accesses)
            << "scheme " << schemeName(scheme);
    }
}

// ---- Sweep progress callback ----

TEST(Sweep, ProgressCallbackFiresPerBenchmark) {
    SweepConfig config;
    config.benchmarks = {"crc32"};
    config.schemes = {SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(400_mV)};
    config.trials = 1;
    config.scale = WorkloadScale::Tiny;
    std::vector<SweepProgress> ticks;
    config.onProgress = [&ticks](const SweepProgress& tick) { ticks.push_back(tick); };
    (void)runSweep(config);
    ASSERT_EQ(ticks.size(), 1u);
    EXPECT_EQ(ticks[0].completed, 1u);
    EXPECT_EQ(ticks[0].total, 1u);
    EXPECT_EQ(ticks[0].benchmark, "crc32");
}

// ---- Golden-file export ----

/// Deterministic hand-built sweep result (no simulation, so the golden file
/// only changes when the export format changes).
SweepResult goldenSweepResult() {
    SweepResult result;
    SweepCell& cell = result.cells[{SchemeKind::FfwBbr, 400}];
    for (double x : {1.0, 1.25, 1.5}) cell.normRuntime.add(x);
    for (double x : {10.0, 12.0, 14.0}) cell.l2PerKilo.add(x);
    for (double x : {0.5, 0.375, 0.25}) cell.normEpi.add(x);
    for (double x : {0.5, 0.5, 0.5}) cell.busyFrac.add(x);
    for (double x : {0.25, 0.25, 0.25}) cell.ifetchFrac.add(x);
    for (double x : {0.125, 0.125, 0.125}) cell.dmemFrac.add(x);
    for (double x : {0.125, 0.125, 0.125}) cell.branchFrac.add(x);
    cell.runs = 3;
    cell.linkFailures = 1;
    result.perBenchmark[{"crc32", SchemeKind::FfwBbr, 400}] = cell;
    return result;
}

TEST(Report, SweepJsonMatchesGoldenFile) {
    SweepExportMeta meta;
    meta.version = "test"; // fixed: the golden must not depend on git state
    meta.seed = 42;
    meta.trials = 3;
    meta.scale = "tiny";
    meta.benchmarks = {"crc32"};
    const std::string json = sweepResultToJson(goldenSweepResult(), meta);

    const std::string path = std::string(VOLTCACHE_TEST_GOLDEN_DIR) + "/sweep_small.json";
    if (std::getenv("VOLTCACHE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << json << "\n";
        GTEST_SKIP() << "golden file regenerated at " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (regenerate with VOLTCACHE_UPDATE_GOLDEN=1)";
    std::ostringstream text;
    text << in.rdbuf();
    std::string expected = text.str();
    if (!expected.empty() && expected.back() == '\n') expected.pop_back();
    EXPECT_EQ(json, expected);
}

} // namespace
} // namespace voltcache
