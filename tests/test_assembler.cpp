// Tests for the vr32 text assembler: syntax coverage, error diagnostics,
// and end-to-end execution of assembled programs (including through the
// BBR tool chain).
#include <gtest/gtest.h>

#include "compiler/passes.h"
#include "cpu/simulator.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "linker/linker.h"
#include "schemes/conventional.h"

namespace voltcache {
namespace {

std::int32_t runSource(std::string_view source) {
    const Module module = assemble(source);
    const LinkOutput linked = link(module);
    L2Cache l2;
    CacheOrganization org;
    ConventionalICache icache(org, l2);
    ConventionalDCache dcache(org, l2);
    Simulator sim(linked.image, module.data, icache, dcache);
    const RunStats stats = sim.run();
    EXPECT_TRUE(stats.halted);
    return sim.reg(1);
}

TEST(Assembler, MinimalProgram) {
    EXPECT_EQ(runSource(R"(
        .func main
            li r1, 42
            halt
    )"),
              42);
}

TEST(Assembler, ArithmeticAndComments) {
    EXPECT_EQ(runSource(R"(
        .func main          # comment styles
            li r1, 6        ; both work
            li r2, 7
            mul r1, r1, r2
            addi r1, r1, -2 # 40
            halt
    )"),
              40);
}

TEST(Assembler, LabelsAndBranches) {
    EXPECT_EQ(runSource(R"(
        .func main
            li r2, 5
            mv r1, r0
        loop:
            beq r2, r0, done
            add r1, r1, r2
            addi r2, r2, -1
            jmp loop
        done:
            halt
    )"),
              15);
}

TEST(Assembler, MemoryOperandsAndData) {
    EXPECT_EQ(runSource(R"(
        .func main
            li r2, 0x100000
            lw r1, 4(r2)
            sw r1, 8(r2)
            lw r3, 8(r2)
            add r1, r1, r3
            halt
        .data 0x100000
        .word 0 21 0
    )"),
              42);
}

TEST(Assembler, CallsAndEntryDirective) {
    EXPECT_EQ(runSource(R"(
        .func triple
            li r2, 3
            mul r1, r1, r2
            ret
        .func start
            li r1, 9
            call triple
            halt
        .entry start
    )"),
              27);
}

TEST(Assembler, LiteralPoolSyntax) {
    const Module module = assemble(R"(
        .func main
            ldl r1, =123456789
            ldl r2, =123456789
            add r1, r1, r2
            halt
    )");
    EXPECT_EQ(module.functions[0].sharedLiteralPool.size(), 1u); // deduped
    const LinkOutput linked = link(module);
    L2Cache l2;
    CacheOrganization org;
    ConventionalICache icache(org, l2);
    ConventionalDCache dcache(org, l2);
    Simulator sim(linked.image, module.data, icache, dcache);
    (void)sim.run();
    EXPECT_EQ(sim.reg(1), 246913578);
}

TEST(Assembler, RegisterAliases) {
    EXPECT_EQ(runSource(R"(
        .func main
            li sp, 0x7FF000
            li r3, 77
            sw r3, -4(sp)
            lw r1, -4(sp)
            halt
    )"),
              77);
}

TEST(Assembler, SurvivesBbrToolchain) {
    Module module = assemble(R"(
        .func main
            li r1, 0
            li r2, 100
        loop:
            beq r2, r0, done
            add r1, r1, r2
            addi r2, r2, -1
            jmp loop
        done:
            halt
    )");
    Module transformed = module;
    applyBbrTransforms(transformed);
    const LinkOutput a = link(module);
    const LinkOutput b = link(transformed);
    auto exec = [](const LinkOutput& out, const Module& m) {
        L2Cache l2;
        CacheOrganization org;
        ConventionalICache icache(org, l2);
        ConventionalDCache dcache(org, l2);
        Simulator sim(out.image, m.data, icache, dcache);
        (void)sim.run();
        return sim.reg(1);
    };
    EXPECT_EQ(exec(a, module), 5050);
    EXPECT_EQ(exec(b, transformed), 5050);
}

TEST(Assembler, RoundTripsWithDisassembler) {
    const Module module = assemble(R"(
        .func main
            addi r3, r0, 42
            sw r3, 0(r2)
            halt
    )");
    const std::string listing = disassemble(module);
    EXPECT_NE(listing.find("addi r3, r0, 42"), std::string::npos);
    EXPECT_NE(listing.find("sw r3, 0(r2)"), std::string::npos);
}

// ---- diagnostics ----

TEST(AssemblerErrors, UnknownMnemonicWithLineNumber) {
    try {
        (void)assemble(".func main\n    frobnicate r1\n    halt\n");
        FAIL();
    } catch (const AsmError& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("frobnicate"), std::string::npos);
    }
}

TEST(AssemblerErrors, BadRegister) {
    EXPECT_THROW((void)assemble(".func main\n add r99, r0, r0\n halt\n"), AsmError);
    EXPECT_THROW((void)assemble(".func main\n add rx, r0, r0\n halt\n"), AsmError);
}

TEST(AssemblerErrors, BadImmediate) {
    EXPECT_THROW((void)assemble(".func main\n addi r1, r0, banana\n halt\n"), AsmError);
}

TEST(AssemblerErrors, UnknownLabel) {
    EXPECT_THROW((void)assemble(".func main\n jmp nowhere\n halt\n"), AsmError);
}

TEST(AssemblerErrors, DuplicateLabel) {
    EXPECT_THROW((void)assemble(".func main\nx:\n nop\nx:\n halt\n"), AsmError);
}

TEST(AssemblerErrors, WrongOperandCount) {
    EXPECT_THROW((void)assemble(".func main\n add r1, r2\n halt\n"), AsmError);
}

TEST(AssemblerErrors, CodeOutsideFunction) {
    EXPECT_THROW((void)assemble("    addi r1, r0, 1\n"), AsmError);
}

TEST(AssemblerErrors, WordOutsideData) {
    EXPECT_THROW((void)assemble(".word 1 2 3\n"), AsmError);
}

TEST(AssemblerErrors, MalformedMemOperand) {
    EXPECT_THROW((void)assemble(".func main\n lw r1, r2\n halt\n"), AsmError);
    EXPECT_THROW((void)assemble(".func main\n lw r1, 4(r2\n halt\n"), AsmError);
}

TEST(AssemblerErrors, MissingEntryFunctionCaughtByValidate) {
    EXPECT_THROW((void)assemble(".func helper\n ret\n"), std::invalid_argument);
}

} // namespace
} // namespace voltcache
