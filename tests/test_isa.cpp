// Tests for the vr32 ISA: encoding round trips, field range enforcement,
// the builder DSL, module validation, and the disassembler.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "isa/builder.h"
#include "isa/disasm.h"
#include "isa/instruction.h"
#include "isa/module.h"

namespace voltcache {
namespace {

using namespace regs;

TEST(Encoding, RoundTripRType) {
    const Instruction inst{Opcode::Add, 3, 4, 5, 0};
    EXPECT_EQ(decode(encode(inst)), inst);
}

TEST(Encoding, RoundTripImmediates) {
    for (std::int32_t imm : {-131072, -1, 0, 1, 131071}) {
        const Instruction inst{Opcode::Addi, 1, 2, 0, imm};
        EXPECT_EQ(decode(encode(inst)), inst) << imm;
    }
}

TEST(Encoding, RoundTripStoresAndBranches) {
    const Instruction store{Opcode::Sw, 0, 6, 7, -42};
    EXPECT_EQ(decode(encode(store)), store);
    const Instruction branch{Opcode::Bne, 0, 2, 3, 512};
    EXPECT_EQ(decode(encode(branch)), branch);
}

TEST(Encoding, RoundTripJumpsAndLui) {
    const Instruction jal{Opcode::Jal, 15, 0, 0, -2097152};
    EXPECT_EQ(decode(encode(jal)), jal);
    const Instruction lui{Opcode::Lui, 9, 0, 0, 2097151};
    EXPECT_EQ(decode(encode(lui)), lui);
}

TEST(Encoding, ImmediateOverflowThrows) {
    EXPECT_THROW((void)encode(Instruction{Opcode::Addi, 1, 2, 0, 1 << 18}), EncodingError);
    EXPECT_THROW((void)encode(Instruction{Opcode::Beq, 0, 1, 2, -(1 << 18)}), EncodingError);
    EXPECT_THROW((void)encode(Instruction{Opcode::Jal, 1, 0, 0, 1 << 22}), EncodingError);
}

TEST(Encoding, RegisterOverflowThrows) {
    EXPECT_THROW((void)encode(Instruction{Opcode::Add, 16, 0, 0, 0}), EncodingError);
}

TEST(Encoding, UnknownOpcodeThrows) {
    EXPECT_THROW((void)decode(0xFFFFFFFFu), EncodingError);
}

/// Property: random valid instructions round-trip for every opcode.
class EncodingRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncodingRoundTrip, RandomFields) {
    const auto op = static_cast<Opcode>(GetParam());
    Rng rng(GetParam() * 7919 + 1);
    for (int i = 0; i < 200; ++i) {
        Instruction inst;
        inst.op = op;
        inst.rd = static_cast<std::uint8_t>(rng.nextBelow(16));
        inst.rs1 = static_cast<std::uint8_t>(rng.nextBelow(16));
        inst.rs2 = static_cast<std::uint8_t>(rng.nextBelow(16));
        inst.imm = static_cast<std::int32_t>(rng.nextInRange(-131072, 131071));
        if (op == Opcode::Jal || op == Opcode::Lui) {
            inst.imm = static_cast<std::int32_t>(rng.nextInRange(-2097152, 2097151));
        }
        // Normalize fields the format does not carry.
        Instruction expected = inst;
        const bool rTypeLike = op <= Opcode::Sltu;
        if (rTypeLike) expected.imm = 0;
        if (!rTypeLike) expected.rs2 = 0;
        if (op == Opcode::Lui || op == Opcode::Jal || op == Opcode::Ldl) expected.rs1 = 0;
        if (op == Opcode::Sw || isConditionalBranch(op)) expected.rd = 0;
        if (isConditionalBranch(op)) expected.rs2 = inst.rs2;
        if (op == Opcode::Sw) expected.rs2 = inst.rs2;
        if (op == Opcode::Nop || op == Opcode::Halt) {
            expected = Instruction{op, 0, 0, 0, 0};
        }
        Instruction canonical = expected;
        EXPECT_EQ(decode(encode(canonical)), canonical)
            << mnemonic(op) << " iteration " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EncodingRoundTrip,
                         ::testing::Range(0u, kOpcodeCount));

TEST(Classification, Predicates) {
    EXPECT_TRUE(isConditionalBranch(Opcode::Beq));
    EXPECT_TRUE(isConditionalBranch(Opcode::Bgeu));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jal));
    EXPECT_TRUE(isControlFlow(Opcode::Jalr));
    EXPECT_TRUE(isControlFlow(Opcode::Halt));
    EXPECT_FALSE(isControlFlow(Opcode::Add));
    EXPECT_TRUE(isLoad(Opcode::Ldl));
    EXPECT_TRUE(isStore(Opcode::Sw));
    EXPECT_TRUE(isMemory(Opcode::Lw));
    EXPECT_FALSE(isMemory(Opcode::Beq));
}

TEST(Builder, LiSmallUsesAddi) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.li(r1, 42).halt();
    const Module module = mb.take();
    const auto& insts = module.functions[0].blocks[0].insts;
    ASSERT_EQ(insts.size(), 2u);
    EXPECT_EQ(insts[0].op, Opcode::Addi);
    EXPECT_EQ(insts[0].imm, 42);
}

TEST(Builder, LiLargeUsesLuiOri) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.li(r1, 0x00345678).halt();
    const Module module = mb.take();
    const auto& insts = module.functions[0].blocks[0].insts;
    ASSERT_EQ(insts.size(), 3u);
    EXPECT_EQ(insts[0].op, Opcode::Lui);
    EXPECT_EQ(insts[1].op, Opcode::Ori);
    // Semantics: (imm22 << 10) | low10 must reconstruct the constant.
    EXPECT_EQ((insts[0].imm << 10) | insts[1].imm, 0x00345678);
}

TEST(Builder, LiNegativeLarge) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.li(r1, -0x00345678).halt();
    const Module module = mb.take();
    const auto& insts = module.functions[0].blocks[0].insts;
    ASSERT_EQ(insts.size(), 3u);
    EXPECT_EQ((insts[0].imm << 10) | insts[1].imm, -0x00345678);
}

TEST(Builder, LdlConstDeduplicatesPool) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.ldlConst(r1, 1234567).ldlConst(r2, 1234567).ldlConst(r3, 7654321).halt();
    const Module module = mb.take();
    EXPECT_EQ(module.functions[0].sharedLiteralPool.size(), 2u);
    const auto& block = module.functions[0].blocks[0];
    EXPECT_EQ(block.relocs[0].literalIndex, block.relocs[1].literalIndex);
}

TEST(Builder, BranchesCarryRelocations) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto target = f.newBlock("target");
    f.beq(r1, r2, target).halt();
    f.at(target).halt();
    const Module module = mb.take();
    const auto& block = module.functions[0].blocks[0];
    const auto* reloc = block.relocFor(0);
    ASSERT_NE(reloc, nullptr);
    EXPECT_EQ(reloc->kind, RelocKind::BlockTarget);
    EXPECT_EQ(reloc->targetBlock, target.index);
}

TEST(Builder, DuplicateFunctionRejected) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.halt();
    EXPECT_THROW((void)mb.function("main"), ContractViolation);
}

TEST(ModuleValidate, MissingEntryFunction) {
    ModuleBuilder mb;
    auto f = mb.function("not_main");
    f.halt();
    EXPECT_THROW((void)mb.take(), std::invalid_argument);
}

TEST(ModuleValidate, CallToUnknownFunction) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.call("ghost").halt();
    EXPECT_THROW((void)mb.take(), std::invalid_argument);
}

TEST(ModuleValidate, BranchWithoutRelocRejected) {
    Module module;
    Function fn;
    fn.name = "main";
    BasicBlock block;
    block.label = "entry";
    block.insts.push_back(Instruction{Opcode::Beq, 0, 1, 2, 0}); // no reloc
    fn.blocks.push_back(block);
    module.functions.push_back(fn);
    EXPECT_THROW(module.validate(), std::invalid_argument);
}

TEST(ModuleValidate, MisalignedDataRejected) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    f.halt();
    mb.data(0x1000, {1, 2, 3});
    EXPECT_NO_THROW((void)mb.take());

    ModuleBuilder mb2;
    auto f2 = mb2.function("main");
    f2.halt();
    EXPECT_THROW(mb2.data(0x1001, {1}), ContractViolation);
}

TEST(BasicBlock, FallthroughDetection) {
    BasicBlock sealed;
    sealed.insts.push_back(Instruction{Opcode::Jal, 0, 0, 0, 0});
    EXPECT_FALSE(sealed.hasFallthrough());

    BasicBlock open;
    open.insts.push_back(Instruction{Opcode::Add, 1, 2, 3, 0});
    EXPECT_TRUE(open.hasFallthrough());

    BasicBlock conditional;
    conditional.insts.push_back(Instruction{Opcode::Beq, 0, 1, 2, 4});
    EXPECT_TRUE(conditional.hasFallthrough()); // not-taken path continues

    BasicBlock halted;
    halted.insts.push_back(Instruction{Opcode::Halt, 0, 0, 0, 0});
    EXPECT_FALSE(halted.hasFallthrough());
}

TEST(Disasm, InstructionFormats) {
    EXPECT_EQ(disassemble(Instruction{Opcode::Add, 1, 2, 3, 0}), "add r1, r2, r3");
    EXPECT_EQ(disassemble(Instruction{Opcode::Addi, 1, 0, 0, -5}), "addi r1, r0, -5");
    EXPECT_EQ(disassemble(Instruction{Opcode::Lw, 4, 5, 0, 8}), "lw r4, 8(r5)");
    EXPECT_EQ(disassemble(Instruction{Opcode::Ldl, 4, 0, 0, 12}), "ldl r4, 12(pc)");
    EXPECT_EQ(disassemble(Instruction{Opcode::Sw, 0, 5, 6, -4}), "sw r6, -4(r5)");
    EXPECT_EQ(disassemble(Instruction{Opcode::Beq, 0, 1, 2, 16}), "beq r1, r2, +16");
    EXPECT_EQ(disassemble(Instruction{Opcode::Halt, 0, 0, 0, 0}), "halt");
}

TEST(Disasm, ModuleListingContainsLabelsAndRelocs) {
    ModuleBuilder mb;
    auto f = mb.function("main");
    auto loop = f.newBlock("loop");
    f.jmp(loop);
    f.at(loop).ldlConst(r1, 99).halt();
    const Module module = mb.take();
    const std::string listing = disassemble(module);
    EXPECT_NE(listing.find("main:"), std::string::npos);
    EXPECT_NE(listing.find(".loop"), std::string::npos);
    EXPECT_NE(listing.find("lit[0]=99"), std::string::npos);
}

} // namespace
} // namespace voltcache
