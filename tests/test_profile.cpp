// Tests for the sweep self-profiler and forensics: obs::Span nesting and
// self/total attribution (single- and cross-thread), the zero-cost disabled
// path, the minimal JSON parser backing bench_check / the profile command,
// per-cell forensic harvesting from a real tiny sweep, profile-export golden
// file, and byte-identical sweep JSON with profiling enabled.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "common/json_parse.h"
#include "core/forensics.h"
#include "core/report.h"
#include "core/sweep.h"
#include "obs/span.h"

namespace voltcache {
namespace {

using voltcache::literals::operator""_mV;

/// Spin long enough for steady_clock to advance (span totals must be > 0).
void busyWork() {
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 20000; ++i) sink = sink + static_cast<std::uint64_t>(i) * i;
}

const obs::SpanStat* findSpan(const std::vector<obs::SpanStat>& stats,
                              const char* name) {
    for (const auto& stat : stats) {
        if (stat.name == name) return &stat;
    }
    return nullptr;
}

/// RAII: leave the global profiler disabled and empty however the test exits.
struct ProfilerGuard {
    ProfilerGuard() { obs::Profiler::reset(); }
    ~ProfilerGuard() {
        obs::Profiler::setEnabled(false);
        obs::Profiler::reset();
    }
};

// ---- Span nesting ----

TEST(Span, NestedSpansPartitionParentSelfTime) {
    ProfilerGuard guard;
    obs::Profiler::setEnabled(true);
    {
        const obs::Span outer("outer");
        busyWork();
        {
            const obs::Span inner("inner");
            busyWork();
        }
        busyWork();
    }
    obs::Profiler::setEnabled(false);
    const auto stats = obs::Profiler::snapshot();
    const obs::SpanStat* outer = findSpan(stats, "outer");
    const obs::SpanStat* inner = findSpan(stats, "inner");
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    EXPECT_EQ(outer->count, 1u);
    EXPECT_EQ(inner->count, 1u);
    EXPECT_GT(inner->totalNs, 0u);
    EXPECT_GE(outer->totalNs, inner->totalNs);
    // A leaf's self time is its total; a parent's self time is its total
    // minus the closed children's totals — exactly, not approximately.
    EXPECT_EQ(inner->selfNs, inner->totalNs);
    EXPECT_EQ(outer->selfNs, outer->totalNs - inner->totalNs);
}

TEST(Span, CrossThreadSpansNestPerThread) {
    ProfilerGuard guard;
    obs::Profiler::setEnabled(true);
    {
        const obs::Span root("root");
        std::vector<std::thread> workers;
        for (int t = 0; t < 2; ++t) {
            workers.emplace_back([] {
                const obs::Span worker("worker");
                busyWork();
                const obs::Span task("task");
                busyWork();
            });
        }
        for (auto& worker : workers) worker.join();
    }
    obs::Profiler::setEnabled(false);
    const auto stats = obs::Profiler::snapshot();
    const obs::SpanStat* root = findSpan(stats, "root");
    const obs::SpanStat* worker = findSpan(stats, "worker");
    const obs::SpanStat* task = findSpan(stats, "task");
    ASSERT_NE(root, nullptr);
    ASSERT_NE(worker, nullptr);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(root->count, 1u);
    EXPECT_EQ(worker->count, 2u);
    EXPECT_EQ(task->count, 2u);
    // Each task nests inside its own thread's worker span...
    EXPECT_EQ(worker->selfNs, worker->totalNs - task->totalNs);
    // ...but worker threads are NOT children of the main thread's root span:
    // the span stack is per-thread, so root keeps all of its own time.
    EXPECT_EQ(root->selfNs, root->totalNs);
}

TEST(Span, DisabledSpansRecordNothing) {
    ProfilerGuard guard;
    ASSERT_FALSE(obs::Profiler::enabled());
    {
        const obs::Span span("never");
        busyWork();
    }
    EXPECT_TRUE(obs::Profiler::snapshot().empty());
}

TEST(Span, SnapshotIsNameSorted) {
    ProfilerGuard guard;
    obs::Profiler::setEnabled(true);
    { const obs::Span span("zebra"); }
    { const obs::Span span("alpha"); }
    { const obs::Span span("mid"); }
    obs::Profiler::setEnabled(false);
    const auto stats = obs::Profiler::snapshot();
    ASSERT_EQ(stats.size(), 3u);
    EXPECT_EQ(stats[0].name, "alpha");
    EXPECT_EQ(stats[1].name, "mid");
    EXPECT_EQ(stats[2].name, "zebra");
}

// ---- JSON parser ----

TEST(JsonParse, ParsesNestedDocument) {
    const JsonValue doc = parseJson(
        R"({"name":"x","n":-2.5e2,"flag":true,"none":null,)"
        R"("list":[1,2,3],"inner":{"d":0.25}})");
    ASSERT_TRUE(doc.isObject());
    EXPECT_EQ(doc.stringOr("name", ""), "x");
    EXPECT_DOUBLE_EQ(doc.numberOr("n", 0.0), -250.0);
    const JsonValue* flag = doc.find("flag");
    ASSERT_NE(flag, nullptr);
    EXPECT_TRUE(flag->asBool());
    const JsonValue* none = doc.find("none");
    ASSERT_NE(none, nullptr);
    EXPECT_TRUE(none->isNull());
    const JsonValue* list = doc.find("list");
    ASSERT_NE(list, nullptr);
    ASSERT_TRUE(list->isArray());
    ASSERT_EQ(list->items.size(), 3u);
    EXPECT_DOUBLE_EQ(list->items[1].asNumber(), 2.0);
    const JsonValue* inner = doc.find("inner");
    ASSERT_NE(inner, nullptr);
    EXPECT_DOUBLE_EQ(inner->numberOr("d", 0.0), 0.25);
    EXPECT_EQ(doc.find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(doc.numberOr("missing", 7.0), 7.0);
}

TEST(JsonParse, DecodesEscapesAndUnicode) {
    const JsonValue doc = parseJson(R"(["a\"b\\c\n\t", "\u00e9", "\ud83d\ude00"])");
    ASSERT_TRUE(doc.isArray());
    ASSERT_EQ(doc.items.size(), 3u);
    EXPECT_EQ(doc.items[0].asString(), "a\"b\\c\n\t");
    EXPECT_EQ(doc.items[1].asString(), "\xC3\xA9");             // é as UTF-8
    EXPECT_EQ(doc.items[2].asString(), "\xF0\x9F\x98\x80");     // surrogate pair
}

TEST(JsonParse, RejectsMalformedInput) {
    EXPECT_THROW((void)parseJson(""), JsonParseError);
    EXPECT_THROW((void)parseJson("{\"a\":1} trailing"), JsonParseError);
    EXPECT_THROW((void)parseJson("\"unterminated"), JsonParseError);
    EXPECT_THROW((void)parseJson("tru"), JsonParseError);
    EXPECT_THROW((void)parseJson("{\"a\" 1}"), JsonParseError);
    EXPECT_THROW((void)parseJson("[1,]"), JsonParseError);
    EXPECT_THROW((void)parseJson("\"\\ud83d\""), JsonParseError) << "lone surrogate";
    EXPECT_THROW((void)parseJson(std::string(200, '[')), JsonParseError) << "depth bound";
}

TEST(JsonParse, TypeMismatchThrows) {
    const JsonValue doc = parseJson(R"({"s":"x","n":1})");
    EXPECT_THROW((void)doc.find("s")->asNumber(), JsonParseError);
    EXPECT_THROW((void)doc.find("n")->asString(), JsonParseError);
    EXPECT_THROW((void)doc.find("n")->asBool(), JsonParseError);
}

// ---- Forensics from a real sweep ----

TEST(Forensics, TinySweepAt400mVHarvestsDistributions) {
    SweepConfig config;
    config.benchmarks = {"crc32"};
    config.schemes = {SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(400_mV)};
    config.trials = 2;
    config.scale = WorkloadScale::Tiny;
    config.threads = 1;
    const SweepResult result = runSweep(config);

    const auto it = result.forensics.find({SchemeKind::FfwBbr, 400});
    ASSERT_NE(it, result.forensics.end()) << "no forensics cell for ffw+bbr@400mV";
    const CellForensics& cell = it->second;
    EXPECT_EQ(cell.legs, 2u);
    EXPECT_GT(cell.ffwLegs, 0u);
    EXPECT_GT(cell.bbrLegs, 0u);

    std::uint64_t windowLines = 0;
    for (const std::uint64_t count : cell.ffwWindowSize) windowLines += count;
    // Every D-cache line contributes one window-size sample per FFW leg.
    EXPECT_GT(windowLines, 0u);
    // At 400mV nearly every line holds a defect, so recentering happens.
    EXPECT_GT(cell.ffwRecenters, 0u);

    std::uint64_t chunks = 0;
    for (const std::uint64_t count : cell.bbrChunkWords) chunks += count;
    EXPECT_GT(chunks, 0u);
    std::uint64_t placements = 0;
    for (const std::uint64_t count : cell.bbrDisplacement) placements += count;
    EXPECT_GT(cell.bbrBlocksPlaced, 0u);
    EXPECT_EQ(placements, cell.bbrBlocksPlaced)
        << "each placed block contributes exactly one displacement sample";

    // The forensics block must survive into the JSON export.
    SweepExportMeta meta;
    meta.version = "test";
    const std::string json = sweepResultToJson(result, meta);
    EXPECT_NE(json.find("\"forensics\""), std::string::npos);
    EXPECT_NE(json.find("\"windowWords\""), std::string::npos);
    EXPECT_NE(json.find("\"chunkWords\""), std::string::npos);
}

TEST(Forensics, Log2BucketsRoundTrip) {
    EXPECT_EQ(forensicsLog2Bucket(0), 0u);
    EXPECT_EQ(forensicsLog2Bucket(1), 1u);
    EXPECT_EQ(forensicsLog2Bucket(2), 2u);
    EXPECT_EQ(forensicsLog2Bucket(3), 2u);
    EXPECT_EQ(forensicsLog2Bucket(4), 3u);
    EXPECT_EQ(forensicsLog2Bucket(std::uint64_t{1} << 40), kForensicsLog2Buckets - 1);
    EXPECT_EQ(forensicsLog2BucketLow(0), 0u);
    EXPECT_EQ(forensicsLog2BucketLow(1), 1u);
    EXPECT_EQ(forensicsLog2BucketLow(4), 8u);
}

TEST(Forensics, AccumulateRespectsPresenceFlags) {
    LegForensics leg;
    leg.hasFfw = true;
    leg.ffwWindowSize[4] = 10;
    leg.ffwRecenters = 3;
    leg.failCause = LinkFailCause::None;
    CellForensics cell;
    accumulate(cell, leg);
    EXPECT_EQ(cell.legs, 1u);
    EXPECT_EQ(cell.ffwLegs, 1u);
    EXPECT_EQ(cell.bbrLegs, 0u);
    EXPECT_EQ(cell.ffwWindowSize[4], 10u);

    LegForensics failed;
    failed.failCause = LinkFailCause::NoChunk;
    accumulate(cell, failed);
    EXPECT_EQ(cell.legs, 2u);
    EXPECT_EQ(cell.ffwLegs, 1u);
    EXPECT_EQ(cell.yieldLoss[static_cast<std::size_t>(LinkFailCause::NoChunk)], 1u);
}

// ---- Profile export golden file ----

TEST(Profile, JsonMatchesGoldenFile) {
    std::vector<obs::SpanStat> spans;
    spans.push_back({"execute", 8, 3'000'000'000, 2'500'000'000});
    spans.push_back({"link", 8, 500'000'000, 500'000'000});
    spans.push_back({"sweep", 1, 4'000'000'000, 500'000'000});
    ProfileExportMeta meta;
    meta.version = "test"; // fixed: the golden must not depend on git state
    meta.wallSeconds = 4.0;
    meta.threads = 2;
    const std::string json = profileToJson(spans, {}, meta);

    const std::string path =
        std::string(VOLTCACHE_TEST_GOLDEN_DIR) + "/profile_small.json";
    if (std::getenv("VOLTCACHE_UPDATE_GOLDEN") != nullptr) {
        std::ofstream out(path);
        ASSERT_TRUE(out) << "cannot write " << path;
        out << json << "\n";
        GTEST_SKIP() << "golden file regenerated at " << path;
    }
    std::ifstream in(path);
    ASSERT_TRUE(in) << "missing golden file " << path
                    << " (regenerate with VOLTCACHE_UPDATE_GOLDEN=1)";
    std::ostringstream text;
    text << in.rdbuf();
    std::string expected = text.str();
    if (!expected.empty() && expected.back() == '\n') expected.pop_back();
    EXPECT_EQ(json, expected);

    // The export must also parse back and carry the coverage invariant.
    const JsonValue doc = parseJson(json);
    EXPECT_EQ(doc.stringOr("kind", ""), "profile");
    EXPECT_DOUBLE_EQ(doc.numberOr("selfSeconds", 0.0), 3.5);
    EXPECT_DOUBLE_EQ(doc.numberOr("coverage", 0.0), 3.5 / 4.0);
}

// ---- Determinism with profiling enabled ----

TEST(Profile, SweepJsonIsByteIdenticalAcrossThreadsWhileProfiling) {
    ProfilerGuard guard;
    obs::Profiler::setEnabled(true);
    SweepConfig config;
    config.benchmarks = {"crc32"};
    config.schemes = {SchemeKind::SimpleWordDisable, SchemeKind::FfwBbr};
    config.points = {DvfsTable::at(400_mV)};
    config.trials = 2;
    config.scale = WorkloadScale::Tiny;
    SweepExportMeta meta;
    meta.version = "test";

    config.threads = 1;
    const std::string serial = sweepResultToJson(runSweep(config), meta);
    config.threads = 2;
    const std::string threaded = sweepResultToJson(runSweep(config), meta);
    obs::Profiler::setEnabled(false);
    EXPECT_EQ(serial, threaded)
        << "profiling must not perturb the deterministic reduction";
}

} // namespace
} // namespace voltcache
