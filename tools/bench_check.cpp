// bench_check — noise-aware bench regression gate.
//
//   bench_check --baseline BENCH_x.json --fresh BENCH_x.json
//              [--rel-threshold 0.10] [--ci-mult 3]
//
// Compares a freshly produced BENCH_*.json against a committed baseline,
// metric by metric. A metric regresses when it moves in its bad direction
// (inferred from the unit: throughput units are lower-is-worse, time and
// ratio units are higher-is-worse, unknown units are two-sided) by more than
//
//   tol = max(rel_threshold * |baseline|, ci_mult * (baseCi + freshCi))
//
// — i.e. the stored confidence-interval half-widths widen the tolerance so
// run-to-run Monte Carlo / timer noise does not trip the gate, while a real
// shift beyond both the relative floor and the statistical noise fails it.
//
// Additional gates:
//   * a committed baseline whose CI half-width exceeds |value| fails as
//     ILL-CONDITIONED — such a baseline tolerates anything, so it gates
//     nothing and must be re-measured with more reps;
//   * metrics named *efficiency* regress downward (higher is better), even
//     though their unit is a fraction;
//   * --speedup REF:FRESH:RATIO (repeatable) requires fresh[FRESH] >=
//     RATIO * reference[REF], where the reference file defaults to
//     --baseline and can be pinned to a historical snapshot with
//     --speedup-baseline (e.g. the pre-batching release's execution-driven
//     throughput).
//
// Exit 0 = no regressions, 1 = at least one, 2 = usage/parse error.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.h"

using voltcache::JsonParseError;
using voltcache::JsonValue;
using voltcache::parseJson;

namespace {

struct Metric {
    double value = 0.0;
    double ciHalfWidth = 0.0;
    std::string unit;
};

enum class BadDirection { Higher, Lower, Both };

/// Which way is "worse" for a metric, from its name and unit. Throughput
/// (anything per second) regresses downward; time, ratios, and fractions
/// regress upward; unknown units gate both directions. Efficiency metrics
/// are fractions where *higher* is better (the thread-scaling gate), so the
/// name overrides the unit rule.
BadDirection badDirectionFor(const std::string& name, const std::string& unit) {
    if (name.find("efficiency") != std::string::npos) return BadDirection::Lower;
    if (unit == "1/s" || unit.find("/s") != std::string::npos) return BadDirection::Lower;
    if (unit == "ns" || unit == "us" || unit == "ms" || unit == "s" || unit == "cycles" ||
        unit == "ratio" || unit == "frac" || unit == "bytes" || unit == "words") {
        return BadDirection::Higher;
    }
    return BadDirection::Both;
}

std::map<std::string, Metric> loadMetrics(const std::string& path, std::string* artifact) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue doc = parseJson(text.str());
    *artifact = doc.stringOr("artifact", "?");
    const JsonValue* metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->isArray()) {
        throw std::runtime_error(path + ": no metrics array");
    }
    std::map<std::string, Metric> out;
    for (const JsonValue& entry : metrics->items) {
        Metric metric;
        metric.value = entry.numberOr("value", 0.0);
        metric.ciHalfWidth = entry.numberOr("ci_half_width", 0.0);
        metric.unit = entry.stringOr("unit", "");
        out.emplace(entry.stringOr("name", "?"), metric);
    }
    return out;
}

} // namespace

/// A cross-release milestone: fresh[metric] must be at least `minRatio`
/// times reference[metric2] from a (possibly historical) reference file.
/// Spelled REF_METRIC:FRESH_METRIC:MIN_RATIO on the command line.
struct SpeedupGate {
    std::string refMetric;
    std::string freshMetric;
    double minRatio = 1.0;
};

int main(int argc, char** argv) {
    std::string baselinePath;
    std::string freshPath;
    std::string speedupBaselinePath;
    std::vector<SpeedupGate> speedups;
    double relThreshold = 0.10;
    double ciMult = 3.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_check: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--baseline") {
            baselinePath = next();
        } else if (arg == "--fresh") {
            freshPath = next();
        } else if (arg == "--rel-threshold") {
            relThreshold = std::strtod(next(), nullptr);
        } else if (arg == "--ci-mult") {
            ciMult = std::strtod(next(), nullptr);
        } else if (arg == "--speedup") {
            const std::string spec = next();
            const std::size_t c1 = spec.find(':');
            const std::size_t c2 = c1 == std::string::npos ? c1 : spec.find(':', c1 + 1);
            if (c2 == std::string::npos) {
                std::fprintf(stderr,
                             "bench_check: --speedup wants REF_METRIC:FRESH_METRIC:RATIO\n");
                return 2;
            }
            SpeedupGate gate;
            gate.refMetric = spec.substr(0, c1);
            gate.freshMetric = spec.substr(c1 + 1, c2 - c1 - 1);
            gate.minRatio = std::strtod(spec.c_str() + c2 + 1, nullptr);
            if (gate.minRatio <= 0.0) {
                std::fprintf(stderr, "bench_check: --speedup ratio must be positive\n");
                return 2;
            }
            speedups.push_back(gate);
        } else if (arg == "--speedup-baseline") {
            speedupBaselinePath = next();
        } else {
            std::fprintf(stderr,
                         "usage: bench_check --baseline FILE --fresh FILE\n"
                         "       [--rel-threshold %.2f] [--ci-mult %.1f]\n"
                         "       [--speedup REF_METRIC:FRESH_METRIC:MIN_RATIO]...\n"
                         "       [--speedup-baseline FILE]\n",
                         relThreshold, ciMult);
            return 2;
        }
    }
    if (baselinePath.empty() || freshPath.empty()) {
        std::fprintf(stderr, "bench_check: --baseline and --fresh are required\n");
        return 2;
    }

    try {
        std::string baseArtifact;
        std::string freshArtifact;
        const auto baseline = loadMetrics(baselinePath, &baseArtifact);
        const auto fresh = loadMetrics(freshPath, &freshArtifact);
        if (baseArtifact != freshArtifact) {
            std::fprintf(stderr, "bench_check: artifact mismatch ('%s' vs '%s')\n",
                         baseArtifact.c_str(), freshArtifact.c_str());
            return 2;
        }

        int regressions = 0;
        int compared = 0;
        int missing = 0;
        int illConditioned = 0;
        for (const auto& [name, base] : baseline) {
            // A committed baseline whose confidence interval swallows its
            // own mean cannot gate anything: every tolerance it produces is
            // wider than the value it protects. Re-measure with more reps
            // before committing it.
            if (base.ciHalfWidth > std::fabs(base.value) && base.ciHalfWidth > 0.0) {
                std::fprintf(stderr,
                             "ILL-CONDITIONED %s: baseline %.6g +- %.6g "
                             "(CI half-width exceeds |value|)\n",
                             name.c_str(), base.value, base.ciHalfWidth);
                ++illConditioned;
            }
            const auto it = fresh.find(name);
            if (it == fresh.end()) {
                std::fprintf(stderr, "MISSING  %s (in baseline, not in fresh run)\n",
                             name.c_str());
                ++missing;
                continue;
            }
            const Metric& now = it->second;
            ++compared;
            const double tol = std::max(relThreshold * std::fabs(base.value),
                                        ciMult * (base.ciHalfWidth + now.ciHalfWidth));
            const double delta = now.value - base.value;
            const BadDirection bad = badDirectionFor(name, base.unit);
            const bool regressed =
                (bad == BadDirection::Higher && delta > tol) ||
                (bad == BadDirection::Lower && -delta > tol) ||
                (bad == BadDirection::Both && std::fabs(delta) > tol);
            if (regressed) {
                std::fprintf(stderr,
                             "REGRESSED %s: %.6g -> %.6g (delta %+.6g, tol %.6g, unit %s)\n",
                             name.c_str(), base.value, now.value, delta, tol,
                             base.unit.c_str());
                ++regressions;
            }
        }

        // Milestone ratios against a (possibly historical) reference file:
        // e.g. the batched sweep's legs/sec against the pre-batch release's
        // execution-driven baseline. These only ever compare fresh values,
        // so a stale regular baseline cannot mask a lost milestone.
        int lostMilestones = 0;
        if (!speedups.empty()) {
            std::string refArtifact;
            const auto reference = loadMetrics(
                speedupBaselinePath.empty() ? baselinePath : speedupBaselinePath,
                &refArtifact);
            for (const SpeedupGate& gate : speedups) {
                const auto ref = reference.find(gate.refMetric);
                const auto now = fresh.find(gate.freshMetric);
                if (ref == reference.end() || now == fresh.end()) {
                    std::fprintf(stderr, "MISSING  speedup gate %s -> %s: metric absent\n",
                                 gate.refMetric.c_str(), gate.freshMetric.c_str());
                    ++lostMilestones;
                    continue;
                }
                if (ref->second.value <= 0.0) {
                    std::fprintf(stderr, "ILL-CONDITIONED speedup reference %s: %.6g\n",
                                 gate.refMetric.c_str(), ref->second.value);
                    ++lostMilestones;
                    continue;
                }
                const double ratio = now->second.value / ref->second.value;
                if (ratio < gate.minRatio) {
                    std::fprintf(stderr,
                                 "LOST MILESTONE %s / %s = %.3f < required %.3f\n",
                                 gate.freshMetric.c_str(), gate.refMetric.c_str(), ratio,
                                 gate.minRatio);
                    ++lostMilestones;
                } else {
                    std::printf("milestone %s / %s = %.3fx (>= %.3fx)\n",
                                gate.freshMetric.c_str(), gate.refMetric.c_str(), ratio,
                                gate.minRatio);
                }
            }
        }

        std::printf("bench_check %s: %d compared, %d regressed, %d missing, "
                    "%d ill-conditioned\n",
                    baseArtifact.c_str(), compared, regressions, missing, illConditioned);
        // A metric that vanished from the export is a broken gate, not noise.
        return regressions > 0 || missing > 0 || illConditioned > 0 || lostMilestones > 0
                   ? 1
                   : 0;
    } catch (const JsonParseError& e) {
        std::fprintf(stderr, "bench_check: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_check: %s\n", e.what());
        return 2;
    }
}
