// bench_check — noise-aware bench regression gate.
//
//   bench_check --baseline BENCH_x.json --fresh BENCH_x.json
//              [--rel-threshold 0.10] [--ci-mult 3]
//
// Compares a freshly produced BENCH_*.json against a committed baseline,
// metric by metric. A metric regresses when it moves in its bad direction
// (inferred from the unit: throughput units are lower-is-worse, time and
// ratio units are higher-is-worse, unknown units are two-sided) by more than
//
//   tol = max(rel_threshold * |baseline|, ci_mult * (baseCi + freshCi))
//
// — i.e. the stored confidence-interval half-widths widen the tolerance so
// run-to-run Monte Carlo / timer noise does not trip the gate, while a real
// shift beyond both the relative floor and the statistical noise fails it.
// Exit 0 = no regressions, 1 = at least one, 2 = usage/parse error.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/json_parse.h"

using voltcache::JsonParseError;
using voltcache::JsonValue;
using voltcache::parseJson;

namespace {

struct Metric {
    double value = 0.0;
    double ciHalfWidth = 0.0;
    std::string unit;
};

enum class BadDirection { Higher, Lower, Both };

/// Which way is "worse" for a metric, from its unit string. Throughput
/// (anything per second) regresses downward; time, ratios, and fractions
/// regress upward; unknown units gate both directions.
BadDirection badDirectionFor(const std::string& unit) {
    if (unit == "1/s" || unit.find("/s") != std::string::npos) return BadDirection::Lower;
    if (unit == "ns" || unit == "us" || unit == "ms" || unit == "s" || unit == "cycles" ||
        unit == "ratio" || unit == "frac" || unit == "bytes" || unit == "words") {
        return BadDirection::Higher;
    }
    return BadDirection::Both;
}

std::map<std::string, Metric> loadMetrics(const std::string& path, std::string* artifact) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open '" + path + "'");
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue doc = parseJson(text.str());
    *artifact = doc.stringOr("artifact", "?");
    const JsonValue* metrics = doc.find("metrics");
    if (metrics == nullptr || !metrics->isArray()) {
        throw std::runtime_error(path + ": no metrics array");
    }
    std::map<std::string, Metric> out;
    for (const JsonValue& entry : metrics->items) {
        Metric metric;
        metric.value = entry.numberOr("value", 0.0);
        metric.ciHalfWidth = entry.numberOr("ci_half_width", 0.0);
        metric.unit = entry.stringOr("unit", "");
        out.emplace(entry.stringOr("name", "?"), metric);
    }
    return out;
}

} // namespace

int main(int argc, char** argv) {
    std::string baselinePath;
    std::string freshPath;
    double relThreshold = 0.10;
    double ciMult = 3.0;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "bench_check: %s needs a value\n", arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--baseline") {
            baselinePath = next();
        } else if (arg == "--fresh") {
            freshPath = next();
        } else if (arg == "--rel-threshold") {
            relThreshold = std::strtod(next(), nullptr);
        } else if (arg == "--ci-mult") {
            ciMult = std::strtod(next(), nullptr);
        } else {
            std::fprintf(stderr,
                         "usage: bench_check --baseline FILE --fresh FILE\n"
                         "       [--rel-threshold %.2f] [--ci-mult %.1f]\n",
                         relThreshold, ciMult);
            return 2;
        }
    }
    if (baselinePath.empty() || freshPath.empty()) {
        std::fprintf(stderr, "bench_check: --baseline and --fresh are required\n");
        return 2;
    }

    try {
        std::string baseArtifact;
        std::string freshArtifact;
        const auto baseline = loadMetrics(baselinePath, &baseArtifact);
        const auto fresh = loadMetrics(freshPath, &freshArtifact);
        if (baseArtifact != freshArtifact) {
            std::fprintf(stderr, "bench_check: artifact mismatch ('%s' vs '%s')\n",
                         baseArtifact.c_str(), freshArtifact.c_str());
            return 2;
        }

        int regressions = 0;
        int compared = 0;
        int missing = 0;
        for (const auto& [name, base] : baseline) {
            const auto it = fresh.find(name);
            if (it == fresh.end()) {
                std::fprintf(stderr, "MISSING  %s (in baseline, not in fresh run)\n",
                             name.c_str());
                ++missing;
                continue;
            }
            const Metric& now = it->second;
            ++compared;
            const double tol = std::max(relThreshold * std::fabs(base.value),
                                        ciMult * (base.ciHalfWidth + now.ciHalfWidth));
            const double delta = now.value - base.value;
            const BadDirection bad = badDirectionFor(base.unit);
            const bool regressed =
                (bad == BadDirection::Higher && delta > tol) ||
                (bad == BadDirection::Lower && -delta > tol) ||
                (bad == BadDirection::Both && std::fabs(delta) > tol);
            if (regressed) {
                std::fprintf(stderr,
                             "REGRESSED %s: %.6g -> %.6g (delta %+.6g, tol %.6g, unit %s)\n",
                             name.c_str(), base.value, now.value, delta, tol,
                             base.unit.c_str());
                ++regressions;
            }
        }
        std::printf("bench_check %s: %d compared, %d regressed, %d missing\n",
                    baseArtifact.c_str(), compared, regressions, missing);
        // A metric that vanished from the export is a broken gate, not noise.
        return regressions > 0 || missing > 0 ? 1 : 0;
    } catch (const JsonParseError& e) {
        std::fprintf(stderr, "bench_check: %s\n", e.what());
        return 2;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_check: %s\n", e.what());
        return 2;
    }
}
