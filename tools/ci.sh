#!/usr/bin/env sh
# CI entry point: strict build (warnings as errors, ASan+UBSan), full test
# suite, clang-tidy (when installed), and a vcverify smoke check over the
# BBR link example's configuration. Usage:
#
#   tools/ci.sh [build-dir]        # default: build-ci
#
# Environment: VOLTCACHE_CI_SANITIZE=OFF disables sanitizers (e.g. for
# containers without ASan runtime support).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-ci"}
sanitize=${VOLTCACHE_CI_SANITIZE:-"address;undefined"}

echo "== configure (WERROR=ON, SANITIZE=$sanitize) =="
cmake -B "$build_dir" -S "$repo_root" \
      -DVOLTCACHE_WERROR=ON \
      -DVOLTCACHE_SANITIZE="$sanitize" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build =="
cmake --build "$build_dir" -j "$(nproc 2> /dev/null || echo 2)"

echo "== ctest =="
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc 2> /dev/null || echo 2)")

echo "== clang-tidy =="
"$repo_root/tools/run_tidy.sh" "$build_dir"

echo "== vcverify smoke: the icache_bbr_link example's tool chain =="
# The example links basicmath at seed 1 / 400mV; verify the same
# configuration statically, then demand the example agrees at runtime.
"$build_dir/tools/vcverify" basicmath --mv 400 --seed 1
"$build_dir/examples/icache_bbr_link" basicmath 1 400 > /dev/null
# A mismatched fault map must be rejected with a nonzero exit.
if "$build_dir/tools/vcverify" basicmath --mv 400 --seed 1 --verify-seed 2 > /dev/null; then
    echo "ci: FAIL — vcverify accepted a mismatched fault map" >&2
    exit 1
fi

echo "== ci: all checks passed =="
