#!/usr/bin/env sh
# CI entry point: strict build (warnings as errors, ASan+UBSan), full test
# suite, clang-tidy (when installed), and a vcverify smoke check over the
# BBR link example's configuration. Usage:
#
#   tools/ci.sh [build-dir]        # default: build-ci
#
# Environment: VOLTCACHE_CI_SANITIZE=OFF disables sanitizers (e.g. for
# containers without ASan runtime support).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build-ci"}
# Later stages cd into $build_dir and hand it to child processes as an
# environment variable, so a relative argument must be anchored first.
case "$build_dir" in /*) ;; *) build_dir="$PWD/$build_dir" ;; esac
sanitize=${VOLTCACHE_CI_SANITIZE:-"address;undefined"}

echo "== configure (WERROR=ON, SANITIZE=$sanitize) =="
cmake -B "$build_dir" -S "$repo_root" \
      -DVOLTCACHE_WERROR=ON \
      -DVOLTCACHE_SANITIZE="$sanitize" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON

echo "== build =="
cmake --build "$build_dir" -j "$(nproc 2> /dev/null || echo 2)"

echo "== ctest =="
(cd "$build_dir" && ctest --output-on-failure -j "$(nproc 2> /dev/null || echo 2)")

echo "== clang-tidy =="
"$repo_root/tools/run_tidy.sh" "$build_dir"

echo "== vcverify smoke: the icache_bbr_link example's tool chain =="
# The example links basicmath at seed 1 / 400mV; verify the same
# configuration statically, then demand the example agrees at runtime.
"$build_dir/tools/vcverify" basicmath --mv 400 --seed 1
"$build_dir/examples/icache_bbr_link" basicmath 1 400 > /dev/null
# A mismatched fault map must be rejected with a nonzero exit.
if "$build_dir/tools/vcverify" basicmath --mv 400 --seed 1 --verify-seed 2 > /dev/null; then
    echo "ci: FAIL — vcverify accepted a mismatched fault map" >&2
    exit 1
fi

echo "== profile smoke: sweep self-profiler + forensics export =="
# A profiled sweep must explain where the time went (per-phase self times),
# emit worker-utilization counter events into the Chrome trace, and attach a
# forensics block to the sweep JSON.
prof_json="$build_dir/ci_prof_sweep.json"
prof_out="$build_dir/ci_prof.profile.json"
prof_trace="$build_dir/ci_prof.trace.json"
"$build_dir/tools/voltcache" sweep --trials 1 --benchmarks crc32 --scale tiny \
    --json "$prof_json" --profile "$prof_out" --trace "$prof_trace" > /dev/null
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$prof_out" > /dev/null
fi
if ! grep -q '"kind":"profile"' "$prof_out"; then
    echo "ci: FAIL — --profile did not write a profile document" >&2
    exit 1
fi
if ! grep -q '"ph":"C"' "$prof_trace"; then
    echo "ci: FAIL — profiled trace lacks worker-utilization counter events" >&2
    exit 1
fi
if ! grep -q '"forensics"' "$prof_json"; then
    echo "ci: FAIL — sweep JSON lacks the forensics block" >&2
    exit 1
fi
# Both renderers must accept their own artifacts.
"$build_dir/tools/voltcache" profile "$prof_out" > /dev/null
"$build_dir/tools/voltcache" profile "$prof_json" > /dev/null

echo "== bench smoke: tiny sweep with JSON + trace export =="
# A one-trial tiny sweep must produce parseable JSON with non-empty cells and
# a Chrome trace containing the FFW recenter and BBR fetch instrumentation.
sweep_json="$build_dir/ci_sweep.json"
sweep_trace="$build_dir/ci_sweep.trace.json"
"$build_dir/tools/voltcache" sweep --trials 1 --benchmarks crc32 --scale tiny \
    --json "$sweep_json" --trace "$sweep_trace" --progress > /dev/null
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$sweep_json" > /dev/null
    python3 -m json.tool "$sweep_trace" > /dev/null
fi
if ! grep -q '"scheme":"ffw+bbr"' "$sweep_json"; then
    echo "ci: FAIL — sweep JSON has no ffw+bbr cells" >&2
    exit 1
fi
if ! grep -q 'ffw.recenter' "$sweep_trace" || ! grep -q 'bbr.fetch' "$sweep_trace"; then
    echo "ci: FAIL — trace lacks FFW recenter / BBR fetch events" >&2
    exit 1
fi

echo "== analytic gate: MC sweep vs closed-form FFW/BBR models =="
# The statistical oracle: a two-voltage sweep (including 400mV, where the
# fault distributions carry real mass) must agree with the closed-form
# models, and the JSON must carry the analytic block.
gate_json="$build_dir/ci_analytic.json"
"$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32,basicmath \
    --scale tiny --mv 560,400 --analytic-check --json "$gate_json" > /dev/null
if ! grep -q '"analytic"' "$gate_json"; then
    echo "ci: FAIL — sweep JSON lacks the analytic cross-check block" >&2
    exit 1
fi
# Negative control: deliberately doubling the sampled fault rate (while the
# oracle keeps predicting from the physical model) must fail the gate.
if "$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32,basicmath \
    --scale tiny --mv 560,400 --analytic-check --corrupt-mapgen 2.0 > /dev/null 2>&1; then
    echo "ci: FAIL — analytic gate accepted a corrupted fault-map generator" >&2
    exit 1
fi
# The closed-form renderer must accept the full Table II grid.
"$build_dir/tools/voltcache" model > /dev/null

echo "== determinism smoke: sweep JSON identical across --threads 1/2/8 =="
# The parallel executor reduces per-leg slots in canonical order, so the
# export must be byte-identical for any worker count.
det_base="$build_dir/ci_det_t1.json"
"$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32,basicmath \
    --scale tiny --threads 1 --json "$det_base" > /dev/null
for threads in 2 8; do
    det_json="$build_dir/ci_det_t$threads.json"
    "$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32,basicmath \
        --scale tiny --threads "$threads" --json "$det_json" > /dev/null
    if ! cmp -s "$det_base" "$det_json"; then
        echo "ci: FAIL — sweep JSON differs between --threads 1 and --threads $threads" >&2
        exit 1
    fi
done

echo "== replay smoke: sweep JSON identical with and without --no-replay =="
# Trace-driven replay must be a pure fast path: the execution-driven sweep
# (--no-replay) is the ground truth and the replayed export must match it
# byte for byte. The determinism smoke above already produced the replayed
# JSON at --threads 1; reuse it. (ctest runs the same equivalence per-leg
# and per-field in test_replay, under the sanitizers configured above.)
noreplay_json="$build_dir/ci_noreplay.json"
"$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32,basicmath \
    --scale tiny --threads 1 --no-replay --json "$noreplay_json" > /dev/null
if ! cmp -s "$det_base" "$noreplay_json"; then
    echo "ci: FAIL — sweep JSON differs between replayed and --no-replay runs" >&2
    exit 1
fi

echo "== batch smoke: sweep JSON identical with --no-batch and odd --batch sizes =="
# Batched multi-map replay is a pure scheduling change: the one-lane-at-a-time
# path (--no-batch) and awkward batch sizes (1 lane; 7 lanes, which splits a
# trial group unevenly) must reproduce the default export byte for byte.
# det_base above is the default (batched) --threads 1 export; this runs under
# whatever sanitizers this leg configured, so lane-state aliasing bugs surface
# here before the timing gates ever see them.
for mode in no-batch 1 7; do
    batch_json="$build_dir/ci_batch_$mode.json"
    case "$mode" in
        no-batch) batch_flag="--no-batch" ;;
        *) batch_flag="--batch $mode" ;;
    esac
    # shellcheck disable=SC2086 # batch_flag is intentionally word-split
    "$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32,basicmath \
        --scale tiny --threads 2 $batch_flag --json "$batch_json" > /dev/null
    if ! cmp -s "$det_base" "$batch_json"; then
        echo "ci: FAIL — sweep JSON differs between default batching and $batch_flag" >&2
        exit 1
    fi
done

echo "== telemetry smoke: live /metrics + /progress scrape, journal, identical JSON =="
# A sweep with the full telemetry plane attached (exporter on an ephemeral
# port + NDJSON leg journal) is scraped while it runs via `voltcache top`
# (no curl dependency). --telemetry-linger keeps the exporter up briefly so
# the scrape cannot lose the race on fast machines; we then wait for the
# natural exit so the JSON export is complete.
tele_json="$build_dir/ci_tele.json"
tele_plain="$build_dir/ci_tele_plain.json"
tele_journal="$build_dir/ci_tele.ndjson"
tele_log="$build_dir/ci_tele.log"
tele_metrics="$build_dir/ci_tele_metrics.txt"
tele_progress="$build_dir/ci_tele_progress.json"
tele_trace="$build_dir/ci_tele_trace.json"
tele_flight="$build_dir/ci_tele_flight.json"
rm -f "$tele_trace" "$tele_flight"
# The instrumented run carries the ENTIRE observability plane: exporter,
# capped journal, job tracing, and an armed flight recorder. The plain run
# below has none of it; the exports must still match byte for byte.
"$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32,basicmath \
    --scale tiny --threads 2 --telemetry-port 0 --telemetry-linger 10 \
    --journal "$tele_journal" --journal-max-bytes 1048576 \
    --trace-job "$tele_trace" --flight-record "$tele_flight" \
    --json "$tele_json" > /dev/null 2> "$tele_log" &
tele_pid=$!
tele_port=""
i=0
while [ "$i" -lt 100 ]; do
    tele_port=$(sed -n 's/^telemetry: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
        "$tele_log" 2> /dev/null | head -n 1)
    [ -n "$tele_port" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$tele_port" ]; then
    echo "ci: FAIL — sweep never announced its telemetry port" >&2
    kill "$tele_pid" 2> /dev/null || true
    exit 1
fi
"$build_dir/tools/voltcache" top "127.0.0.1:$tele_port" --once \
    --metrics-out "$tele_metrics" --progress-out "$tele_progress" > /dev/null
wait "$tele_pid"
if ! grep -q '^# TYPE voltcache_' "$tele_metrics"; then
    echo "ci: FAIL — /metrics is not Prometheus text exposition" >&2
    exit 1
fi
if ! grep -q '^voltcache_journal_events_total' "$tele_metrics"; then
    echo "ci: FAIL — /metrics lacks the journal event counter" >&2
    exit 1
fi
if command -v python3 > /dev/null 2>&1; then
    python3 -m json.tool "$tele_progress" > /dev/null
    # Every journal line must be one valid JSON object (NDJSON).
    python3 - "$tele_journal" << 'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [json.loads(line) for line in f if line.strip()]
assert lines, "journal is empty"
phases = [e["ev"] for e in lines]
assert phases.count("enqueued") == phases.count("started") == phases.count("finished"), \
    "leg lifecycle events are unbalanced: %r" % {p: phases.count(p) for p in set(phases)}
EOF
fi
if ! grep -q '"ev":"finished"' "$tele_journal"; then
    echo "ci: FAIL — journal has no finished leg events" >&2
    exit 1
fi
# The healthy run collected a span per leg and rendered it as Chrome trace
# JSON — and never tripped the flight recorder.
if [ ! -s "$tele_trace" ]; then
    echo "ci: FAIL — traced sweep wrote no trace file" >&2
    exit 1
fi
if command -v python3 > /dev/null 2>&1; then
    python3 - "$tele_trace" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc.get("kind") == "trace", doc.get("kind")
assert doc.get("spanCount", 0) > 0, "trace collected no spans"
assert doc.get("traceEvents"), "trace has no Chrome trace events"
EOF
fi
"$build_dir/tools/voltcache" trace "$tele_trace" > /dev/null
# The recorder pre-opens its file at install (dumping must be allocation-
# free), so a healthy run leaves it present but empty.
if [ -s "$tele_flight" ]; then
    echo "ci: FAIL — flight recorder dumped on a healthy sweep" >&2
    exit 1
fi
# Observation must never change the result: the same sweep without any
# telemetry, tracing, or flight recorder produces a byte-identical export.
"$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32,basicmath \
    --scale tiny --threads 2 --json "$tele_plain" > /dev/null
if ! cmp -s "$tele_json" "$tele_plain"; then
    echo "ci: FAIL — sweep JSON differs with the telemetry plane attached" >&2
    exit 1
fi

echo "== flight recorder negative control: induced leg failure leaves a parseable dump =="
# Trip a VC_CHECK at the Nth leg with the recorder armed. The sweep must
# fail (nonzero exit), the dump must be one well-formed JSON object naming
# the contract and carrying ring events, and the renderer must read it.
flight_dump="$build_dir/ci_flight.json"
rm -f "$flight_dump"
if "$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32 \
    --scale tiny --threads 2 --fail-at-leg 3 --flight-record "$flight_dump" \
    --json "$build_dir/ci_flight_sweep.json" > /dev/null 2>&1; then
    echo "ci: FAIL — --fail-at-leg did not fail the sweep" >&2
    exit 1
fi
if [ ! -s "$flight_dump" ]; then
    echo "ci: FAIL — crashing sweep left no flight dump" >&2
    exit 1
fi
if command -v python3 > /dev/null 2>&1; then
    python3 - "$flight_dump" << 'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc.get("kind") == "flight", doc.get("kind")
assert doc.get("reason") == "Check", doc.get("reason")
assert "failAtLeg" in doc.get("detail", ""), doc.get("detail")
assert doc.get("events"), "flight dump captured no ring events"
EOF
fi
"$build_dir/tools/voltcache" trace "$flight_dump" > /dev/null

echo "== serve smoke: daemon round trip, warm hits, byte-identical JSON, graceful stop =="
# Launch the sweep service on an ephemeral port with an on-disk store, submit
# the same small sweep twice, and require: (1) both served documents are
# byte-identical to the direct CLI export, (2) the second submission is served
# (almost) entirely from the content-addressed store, (3) SIGTERM drains and
# exits 0. Runs under whatever sanitizers this leg configured.
serve_dir="$build_dir/ci_serve_store"
serve_log="$build_dir/ci_serve.log"
serve_direct="$build_dir/ci_serve_direct.json"
serve_first="$build_dir/ci_serve_first.json"
serve_second="$build_dir/ci_serve_second.json"
serve_summary="$build_dir/ci_serve_summary.txt"
rm -rf "$serve_dir"
"$build_dir/tools/voltcache" serve --port 0 --store "$serve_dir" \
    --telemetry-port 0 > /dev/null 2> "$serve_log" &
serve_pid=$!
serve_port=""
i=0
while [ "$i" -lt 100 ]; do
    serve_port=$(sed -n 's/^serve: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
        "$serve_log" 2> /dev/null | head -n 1)
    [ -n "$serve_port" ] && break
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$serve_port" ]; then
    echo "ci: FAIL — serve never announced its port" >&2
    kill "$serve_pid" 2> /dev/null || true
    exit 1
fi
"$build_dir/tools/voltcache" sweep --trials 2 --benchmarks crc32,basicmath \
    --scale tiny --json "$serve_direct" > /dev/null
"$build_dir/tools/voltcache" submit "127.0.0.1:$serve_port" --op sweep \
    --trials 2 --benchmarks crc32,basicmath --scale tiny \
    --json "$serve_first" > /dev/null
"$build_dir/tools/voltcache" submit "127.0.0.1:$serve_port" --op sweep \
    --trials 2 --benchmarks crc32,basicmath --scale tiny \
    --json "$serve_second" > "$serve_summary"
for served in "$serve_first" "$serve_second"; do
    if ! cmp -s "$serve_direct" "$served"; then
        echo "ci: FAIL — served sweep JSON differs from the direct CLI export" >&2
        kill "$serve_pid" 2> /dev/null || true
        exit 1
    fi
done
# The summary line reports hitRate=H.HHHH for the job; the second submission
# must be >= 90% store hits.
if ! awk -F'hitRate=' '/^submit:/ { split($2, f, " "); if (f[1] >= 0.90) found = 1 }
                       END { exit found ? 0 : 1 }' "$serve_summary"; then
    echo "ci: FAIL — second submission was not served from the store:" >&2
    cat "$serve_summary" >&2
    kill "$serve_pid" 2> /dev/null || true
    exit 1
fi
# Every submission is traced end to end: the summary echoes the job's trace
# id and the daemon serves the span-tree index over /trace on its
# telemetry port.
if ! grep -q 'trace=' "$serve_summary"; then
    echo "ci: FAIL — submit summary does not echo the trace id" >&2
    kill "$serve_pid" 2> /dev/null || true
    exit 1
fi
serve_tele_port=$(sed -n 's/^telemetry: listening on 127\.0\.0\.1:\([0-9][0-9]*\)$/\1/p' \
    "$serve_log" 2> /dev/null | head -n 1)
if [ -z "$serve_tele_port" ]; then
    echo "ci: FAIL — serve never announced its telemetry port" >&2
    kill "$serve_pid" 2> /dev/null || true
    exit 1
fi
if ! "$build_dir/tools/voltcache" trace "127.0.0.1:$serve_tele_port" \
    | grep -q 'spans'; then
    echo "ci: FAIL — /trace index is not served or renders empty" >&2
    kill "$serve_pid" 2> /dev/null || true
    exit 1
fi
kill -TERM "$serve_pid"
if ! wait "$serve_pid"; then
    echo "ci: FAIL — serve did not exit 0 on SIGTERM" >&2
    exit 1
fi

echo "== perf smoke: micro benches export BENCH_micro.json + BENCH_perf.json =="
# Exercises the obs primitives (counter add, trace record, span open/close)
# under whatever sanitizers this leg configured, and produces the fresh
# BENCH_*.json the timing gate below diffs in unsanitized runs. min_time
# matches the documented baseline-refresh procedure (EXPERIMENTS.md): the
# nanosecond-scale benches measure systematically slower at shorter budgets
# (short calibration runs underestimate iterations), which would read as a
# phantom regression against a 0.05-budget baseline.
(cd "$build_dir" && VOLTCACHE_BENCH_DIR="$build_dir" \
    ./bench/bench_micro --benchmark_min_time=0.05 > /dev/null)
for artifact in BENCH_micro.json BENCH_perf.json; do
    if [ ! -s "$build_dir/$artifact" ]; then
        echo "ci: FAIL — bench_micro did not write $artifact" >&2
        exit 1
    fi
    if command -v python3 > /dev/null 2>&1; then
        python3 -m json.tool "$build_dir/$artifact" > /dev/null
    fi
done

echo "== bench gate: bench_check against committed baselines =="
# Self-test the gate on the synthetic fixtures first: identical inputs must
# pass, a 20% regression must exit non-zero.
"$build_dir/tools/bench_check" \
    --baseline "$repo_root/tools/testdata/bench_base.json" \
    --fresh "$repo_root/tools/testdata/bench_base.json" > /dev/null
if "$build_dir/tools/bench_check" \
    --baseline "$repo_root/tools/testdata/bench_base.json" \
    --fresh "$repo_root/tools/testdata/bench_regressed.json" > /dev/null 2>&1; then
    echo "ci: FAIL — bench_check accepted a synthetic 20% regression" >&2
    exit 1
fi
# Figure artifacts are deterministic at fixed trials/scale/benchmarks, so
# compare them against the committed baselines on every run.
for artifact in fig10 fig12; do
    VOLTCACHE_BENCH_DIR="$build_dir" VOLTCACHE_TRIALS=2 VOLTCACHE_SCALE=tiny \
        VOLTCACHE_BENCHMARKS=crc32,basicmath \
        "$build_dir/bench/bench_$artifact" > /dev/null
    "$build_dir/tools/bench_check" \
        --baseline "$repo_root/bench/baselines/BENCH_$artifact.json" \
        --fresh "$build_dir/BENCH_$artifact.json"
done
# Timing artifacts are machine- and sanitizer-dependent: only gate them in
# unsanitized runs, with a generous relative threshold on top of the stored
# CI half-widths.
if [ "$sanitize" = "OFF" ]; then
    "$build_dir/tools/bench_check" \
        --baseline "$repo_root/bench/baselines/BENCH_micro.json" \
        --fresh "$build_dir/BENCH_micro.json" \
        --rel-threshold 0.5
    # The perf gate additionally holds the batched-replay milestone: the
    # default sweep's single-thread legs/sec must stay ahead of the
    # pre-batching release's execution-driven rate (the pinned snapshot in
    # BENCH_perf_prebatch.json) by at least 1.10x. The ratio is deliberately
    # below the ~1.3-1.6x measured on a quiet machine: this runs on shared
    # CI hardware and must only catch the milestone being *lost*, not noise.
    "$build_dir/tools/bench_check" \
        --baseline "$repo_root/bench/baselines/BENCH_perf.json" \
        --fresh "$build_dir/BENCH_perf.json" \
        --rel-threshold 0.5 \
        --speedup-baseline "$repo_root/bench/baselines/BENCH_perf_prebatch.json" \
        --speedup "sweep.exec_legs_per_sec/threads1:sweep.legs_per_sec/threads1:1.10"
    # The serve milestone: a warm store must serve legs at least 5x the cold
    # (simulate-and-populate) rate. Both metrics come from the SAME fresh
    # BENCH_perf.json — the ratio is within-run, so the gate is machine-
    # independent (measured ~100x+ on a quiet machine; 5x only catches the
    # cache being lost, not noise).
    "$build_dir/tools/bench_check" \
        --baseline "$build_dir/BENCH_perf.json" \
        --fresh "$build_dir/BENCH_perf.json" \
        --speedup-baseline "$build_dir/BENCH_perf.json" \
        --speedup "serve.cold_legs_per_sec:serve.warm_legs_per_sec:5.0"
else
    echo "   (skipping micro/perf timing gate: sanitizers distort timings;"
    echo "    rerun with VOLTCACHE_CI_SANITIZE=OFF to enforce it)"
fi

echo "== ci: all checks passed =="
