// voltcache — command-line front end to the library.
//
//   voltcache run <prog.s | benchmark> [--scheme S] [--mv V] [--seed N]
//       assemble (or build) a program, link it (BBR placement when the
//       scheme needs it), simulate one chip, print stats
//   voltcache verify <prog.s | benchmark> [--mv V] [--seed N]
//       statically verify the BBR link: module lint + placement proof over
//       the image CFG (see tools/vcverify for the full verifier)
//   voltcache disasm <prog.s | benchmark> [--bbr]
//       print the listing, optionally after the BBR transformations
//   voltcache faultmap [--mv V] [--seed N] [-o FILE]
//       draw a Monte Carlo fault map for the 32KB L1 and print/save it
//   voltcache yield [--bits N] [--target 0.999]
//       Vccmin of an N-bit structure at a yield target
//   voltcache sweep [--trials N] [--benchmarks a,b,...] [--scale S]
//             [--threads N] [--mv V1,V2,...] [--json FILE] [--trace FILE]
//             [--profile FILE] [--progress] [--no-replay] [--analytic-check]
//             [--check-z Z] [--corrupt-mapgen SCALE] [--batch N] [--no-batch]
//       the Fig. 10/11/12 sweep, printed as one table; --json exports the
//       full result (with CI half-widths and the forensics block), --trace
//       a Chrome trace of the most recent events (open in Perfetto),
//       --profile a self-profile (per-phase span self-times + metrics
//       snapshot). --threads sets the worker count (0 = all cores); the
//       result is bit-identical either way. --analytic-check gates the MC
//       estimates against the closed-form FFW/BBR models (nonzero exit on
//       divergence); --corrupt-mapgen deliberately scales the sampled fault
//       rate so the gate's negative control has something to catch
//   voltcache model [--mv V1,V2,...] [--need WORDS] [--json FILE]
//       render the closed-form FFW window / yield curves and BBR placement
//       success probabilities (exact + provable bounds) without simulating
//   voltcache profile <profile.json | sweep.json>
//       human-readable rendering of a --profile artifact (span table) or a
//       sweep export's forensics block
//   voltcache stats <prog.s | benchmark> [--scheme S] [--mv V] [--seed N]
//             [--json FILE] [--trace FILE]
//       one instrumented leg: run + L1 + link + locality stats and the full
//       metrics-registry snapshot
//   voltcache serve [--port P] [--store DIR] [--store-budget MB]
//             [--threads N] [--journal FILE] [--telemetry-port N]
//       sweep-as-a-service daemon: NDJSON jobs over loopback TCP, fair
//       round-robin across client sessions, every leg memoized in a
//       content-addressed result store (src/serve). SIGINT/SIGTERM drain
//       gracefully: in-flight legs finish, the store segment flushes
//   voltcache submit <host:port> [--op sweep|run|verify] [sweep flags]
//             [--json FILE] [--progress] [--id LABEL] [--timeout MS]
//       send one job to a running `voltcache serve`, stream its events, and
//       write the returned sweep document (byte-identical to the direct
//       `voltcache sweep --json` path) to --json. Mints a 128-bit trace id
//       for the job (or forwards --trace-id) and reports it back, so the
//       daemon's /trace/<id> endpoint and `voltcache trace` can render the
//       job's span tree end to end
//   voltcache trace <host:port | trace.json | flight.json> [--job J]
//       render a job trace (Chrome trace-event JSON from --trace-job,
//       /trace/<job>, or a fetch from a live telemetry endpoint) or a
//       flight-recorder crash dump as a human-readable span/event table
//   voltcache list
//       available benchmarks and schemes
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/scheme_model.h"
#include "analysis/verify.h"
#include "common/json_parse.h"
#include "common/socket.h"
#include "core/analytic_gate.h"
#include "common/table.h"
#include "common/version.h"
#include "core/report.h"
#include "core/sweep.h"
#include "cpu/trace_sink_observer.h"
#include "faults/fault_map_io.h"
#include "faults/yield.h"
#include "isa/assembler.h"
#include "isa/disasm.h"
#include "obs/export/journal.h"
#include "obs/export/telemetry.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/trace.h"
#include "obs/trace_context.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "workload/locality.h"
#include "workload/workload.h"

using namespace voltcache;

namespace {

struct Args {
    std::string positional;
    std::map<std::string, std::string> flags;

    [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
        const auto it = flags.find(key);
        return it != flags.end() ? it->second : fallback;
    }
};

Args parseArgs(int argc, char** argv, int first) {
    Args args;
    for (int i = first; i < argc; ++i) {
        const std::string token = argv[i];
        if (token.rfind("--", 0) == 0 || token == "-o") {
            const std::string key = token == "-o" ? "out" : token.substr(2);
            if (key == "bbr" || key == "progress" || key == "no-replay" ||
                key == "no-batch" || key == "analytic-check" || key == "once") { // boolean flags
                args.flags[key] = "1";
                continue;
            }
            if (i + 1 >= argc) throw std::runtime_error("flag " + token + " needs a value");
            args.flags[key] = argv[++i];
        } else if (args.positional.empty()) {
            args.positional = token;
        } else {
            throw std::runtime_error("unexpected argument '" + token + "'");
        }
    }
    return args;
}

std::optional<SchemeKind> schemeByName(const std::string& name) {
    for (const SchemeKind kind :
         {SchemeKind::DefectFree, SchemeKind::Conventional760, SchemeKind::Robust8T,
          SchemeKind::SimpleWordDisable, SchemeKind::WilkersonPlus, SchemeKind::FbaPlus,
          SchemeKind::IdcPlus, SchemeKind::FfwBbr}) {
        if (schemeName(kind) == name) return kind;
    }
    return std::nullopt;
}

bool isBenchmarkName(const std::string& name) {
    for (const auto& info : benchmarkList()) {
        if (info.name == name) return true;
    }
    return false;
}

Module loadProgram(const std::string& source) {
    if (isBenchmarkName(source)) return buildBenchmark(source, WorkloadScale::Small);
    std::ifstream in(source);
    if (!in) throw std::runtime_error("cannot open '" + source + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return assemble(text.str());
}

WorkloadScale parseScale(const std::string& name) {
    if (name == "tiny") return WorkloadScale::Tiny;
    if (name == "small") return WorkloadScale::Small;
    if (name == "reference") return WorkloadScale::Reference;
    throw std::runtime_error("unknown scale '" + name + "' (tiny|small|reference)");
}

const char* scaleName(WorkloadScale scale) {
    switch (scale) {
        case WorkloadScale::Tiny: return "tiny";
        case WorkloadScale::Small: return "small";
        case WorkloadScale::Reference: return "reference";
    }
    return "?";
}

void writeTextFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    if (!out) throw std::runtime_error("cannot write '" + path + "'");
    out << content << "\n";
}

std::vector<std::string> splitCsv(const std::string& text) {
    std::vector<std::string> parts;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t comma = text.find(',', pos);
        const std::size_t end = comma == std::string::npos ? text.size() : comma;
        if (end > pos) parts.push_back(text.substr(pos, end - pos));
        pos = end + 1;
    }
    return parts;
}

/// Parse "560,520,400" into DVFS operating points (Table II lookup).
std::vector<OperatingPoint> parseMvList(const std::string& text) {
    std::vector<OperatingPoint> points;
    for (const std::string& mv : splitCsv(text)) {
        points.push_back(DvfsTable::at(Voltage::fromMillivolts(std::stod(mv))));
    }
    return points;
}

/// Parse run/stats leg flags shared by cmdRun and cmdStats.
SystemConfig legConfigFromArgs(const Args& args) {
    SystemConfig config;
    const std::string schemeText = args.get("scheme", "ffw+bbr");
    const auto kind = schemeByName(schemeText);
    if (!kind) throw std::runtime_error("unknown scheme '" + schemeText + "'");
    config.scheme = *kind;
    config.op = DvfsTable::at(Voltage::fromMillivolts(std::stod(args.get("mv", "400"))));
    config.faultMapSeed = std::stoull(args.get("seed", "1"));
    config.maxInstructions = std::stoull(args.get("max-instructions", "0"));
    return config;
}

RunExportMeta legMetaFromArgs(const Args& args, const SystemConfig& config) {
    RunExportMeta meta;
    meta.version = std::string(buildVersion());
    meta.benchmark = args.positional;
    meta.scheme = std::string(schemeName(config.scheme));
    meta.voltageMv = static_cast<int>(config.op.voltage.millivolts() + 0.5);
    meta.seed = config.faultMapSeed;
    return meta;
}

int cmdList() {
    std::printf("benchmarks:\n");
    for (const auto& info : benchmarkList()) {
        std::printf("  %-14s (models %s)\n", info.name.data(), info.models.data());
    }
    std::printf("schemes:\n");
    for (const SchemeKind kind :
         {SchemeKind::DefectFree, SchemeKind::Conventional760, SchemeKind::Robust8T,
          SchemeKind::SimpleWordDisable, SchemeKind::WilkersonPlus, SchemeKind::FbaPlus,
          SchemeKind::IdcPlus, SchemeKind::FfwBbr}) {
        std::printf("  %s\n", schemeName(kind).data());
    }
    std::printf("voltages (Table II): 760 560 520 480 440 400 mV\n");
    return 0;
}

int cmdRun(const Args& args) {
    if (args.positional.empty()) throw std::runtime_error("run: need a program");
    Module module = loadProgram(args.positional);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);

    const SystemConfig config = legConfigFromArgs(args);

    // --trace: attach a process-wide sink for the duration of the leg so the
    // scheme / linker instrumentation points are captured.
    obs::TraceSink sink;
    std::optional<obs::ScopedTraceSink> traceGuard;
    if (args.flags.contains("trace")) traceGuard.emplace(&sink);

    const SystemResult result = simulateSystem(module, &bbrModule, config);
    if (args.flags.contains("trace")) {
        writeTextFile(args.get("trace", ""), sink.toChromeJson());
    }
    if (args.flags.contains("json")) {
        writeTextFile(args.get("json", ""),
                      systemResultToJson(result, legMetaFromArgs(args, config)));
    }
    if (result.linkFailed) {
        std::printf("BBR placement failed for this chip (yield loss) — try another "
                    "--seed\n");
        return 1;
    }
    std::printf("program: %s   scheme: %s   %.0fmV / %.0fMHz   chip seed %llu\n",
                args.positional.c_str(), schemeName(config.scheme).data(),
                config.op.voltage.millivolts(), config.op.frequency.megahertz(),
                static_cast<unsigned long long>(config.faultMapSeed));
    std::printf("instructions  %llu%s\n",
                static_cast<unsigned long long>(result.run.instructions),
                result.run.halted ? "" : " (instruction cap hit)");
    std::printf("cycles        %llu  (IPC %.3f)\n",
                static_cast<unsigned long long>(result.run.cycles), result.run.ipc());
    std::printf("runtime       %.3f ms\n", result.runtimeSeconds * 1e3);
    std::printf("EPI           %.1f pJ\n", result.epi * 1e12);
    std::printf("L2 / 1k instr %.1f\n", result.run.l2AccessesPerKilo());
    std::printf("checksum (r1) 0x%08x\n", static_cast<unsigned>(result.checksum));
    if (config.scheme == SchemeKind::FfwBbr) {
        std::printf("BBR link: %u blocks, %u gap words\n", result.linkStats.blocksPlaced,
                    result.linkStats.gapWords);
    }
    return 0;
}

int cmdVerify(const Args& args) {
    // Static verification (see tools/vcverify.cpp for the full-featured
    // verifier): BBR-transform, lint, link against this chip's fault map,
    // and prove the placement over the image CFG.
    if (args.positional.empty()) throw std::runtime_error("verify: need a program");
    Module module = loadProgram(args.positional);
    applyBbrTransforms(module);

    Rng rng(std::stoull(args.get("seed", "1")));
    const FaultMapGenerator generator;
    const FaultMap map = generator.generate(
        rng, Voltage::fromMillivolts(std::stod(args.get("mv", "400"))), 1024, 8);

    analysis::LintOptions lintOptions;
    lintOptions.maxBlockWords = analysis::maxPlaceableBlockWords(map);
    const auto findings = analysis::lintModule(module, lintOptions);
    std::fputs(analysis::formatFindings(findings).c_str(), stdout);

    LinkOptions options;
    options.bbrPlacement = true;
    options.icacheFaultMap = &map;
    std::optional<LinkOutput> out;
    try {
        out = link(module, options);
    } catch (const LinkError& e) {
        std::printf("link failure (yield loss): %s\n", e.what());
        return 1;
    }
    const analysis::PlacementProof proof =
        analysis::provePlacement(out->image, map, &module);
    std::fputs(analysis::formatProof(proof).c_str(), stdout);
    const bool ok = proof.verified && !analysis::hasLintErrors(findings);
    std::printf("%s: %u reachable words over %u blocks, %zu violation(s)\n",
                ok ? "VERIFIED" : "REJECTED", proof.reachableWords,
                proof.reachableBlocks, proof.violations.size());
    return ok ? 0 : 1;
}

int cmdDisasm(const Args& args) {
    if (args.positional.empty()) throw std::runtime_error("disasm: need a program");
    Module module = loadProgram(args.positional);
    if (args.flags.contains("bbr")) applyBbrTransforms(module);
    std::fputs(disassemble(module).c_str(), stdout);
    return 0;
}

int cmdFaultmap(const Args& args) {
    const Voltage v = Voltage::fromMillivolts(std::stod(args.get("mv", "400")));
    Rng rng(std::stoull(args.get("seed", "1")));
    const FaultMapGenerator generator;
    const FaultMap map = generator.generate(rng, v, 1024, 8);
    std::printf("# %u of %u words defective (%.1f%%) at %.0fmV\n", map.totalFaultyWords(),
                map.totalWords(), 100.0 * map.totalFaultyWords() / map.totalWords(),
                v.millivolts());
    const std::string text = faultMapToString(map);
    if (args.flags.contains("out")) {
        std::ofstream out(args.get("out", ""));
        out << text;
        std::printf("written to %s\n", args.get("out", "").c_str());
    } else {
        std::fputs(text.c_str(), stdout);
    }
    return 0;
}

int cmdYield(const Args& args) {
    const std::uint64_t bits = std::stoull(args.get("bits", "262144"));
    const double target = std::stod(args.get("target", "0.999"));
    const YieldAnalyzer analyzer;
    const Voltage vccmin = analyzer.vccmin(bits, target);
    std::printf("structure of %llu bits at %.3f yield target: Vccmin = %.0f mV\n",
                static_cast<unsigned long long>(bits), target, vccmin.millivolts());
    for (const auto& point : DvfsTable::paperPoints()) {
        std::printf("  yield at %.0fmV: %.6f\n", point.voltage.millivolts(),
                    analyzer.yield(point.voltage, bits));
    }
    return 0;
}

int cmdSweep(const Args& args) {
    SweepConfig config;
    config.trials = static_cast<std::uint32_t>(std::stoul(args.get("trials", "3")));
    config.scale = parseScale(args.get("scale", "small"));
    config.maxInstructions = std::stoull(args.get("max-instructions", "0"));
    config.threads = static_cast<unsigned>(std::stoul(args.get("threads", "0")));
    config.benchmarks = splitCsv(args.get("benchmarks", ""));
    if (args.flags.contains("mv")) config.points = parseMvList(args.get("mv", ""));
    // --corrupt-mapgen scales the sampled fault rate while the analytic
    // check keeps predicting from the physical model: the gate's negative
    // control (any value != 1 must make --analytic-check fail).
    config.systemTemplate.faultRateScale = std::stod(args.get("corrupt-mapgen", "1"));
    config.useReplay = !args.flags.contains("no-replay");
    config.useBatch = !args.flags.contains("no-batch");
    config.batchLanes = static_cast<std::uint32_t>(std::stoul(args.get("batch", "0")));
    // --fail-at-leg: deliberately fail a VC_CHECK inside the Nth leg (1-based)
    // — the flight recorder's negative control (ci.sh asserts the dump).
    config.failAtLeg =
        static_cast<std::uint32_t>(std::stoul(args.get("fail-at-leg", "0")));

    // --flight-record: arm the async-signal-safe black box. Installed before
    // any worker starts so a crash anywhere in the sweep lands in the dump.
    obs::FlightRecorder* flight = nullptr;
    if (args.flags.contains("flight-record")) {
        obs::FlightRecorder::Options flightOptions;
        flightOptions.path = args.get("flight-record", "");
        flight = &obs::FlightRecorder::install(flightOptions);
    }

    // --trace-job FILE: end-to-end job tracing for this sweep — mint a root
    // context, stamp every leg event with its deterministic child span, and
    // write the collected span tree as Chrome trace JSON after the run.
    obs::TraceContext traceContext;
    const bool traceJob = args.flags.contains("trace-job");
    if (traceJob) {
        traceContext = obs::makeRootContext("sweep");
        config.trace = traceContext;
    }
    if (flight != nullptr) flight->noteJob("sweep", traceContext);

    if (args.flags.contains("progress")) {
        // ETA from an EWMA of the sweep's legs/sec; ticks are serialized
        // under the progress lock, so the mutable lambda state is safe.
        const auto started = std::chrono::steady_clock::now();
        double ewmaLegsPerSec = 0.0;
        double lastElapsed = 0.0;
        std::size_t lastLegs = 0;
        config.onProgress = [started, ewmaLegsPerSec, lastElapsed,
                             lastLegs](const SweepProgress& progress) mutable {
            const double elapsed =
                std::chrono::duration<double>(std::chrono::steady_clock::now() - started)
                    .count();
            const double dt = elapsed - lastElapsed;
            if (dt > 0.0 && progress.legsCompleted > lastLegs) {
                const double instantaneous =
                    static_cast<double>(progress.legsCompleted - lastLegs) / dt;
                ewmaLegsPerSec = ewmaLegsPerSec == 0.0
                                     ? instantaneous
                                     : 0.7 * ewmaLegsPerSec + 0.3 * instantaneous;
                lastElapsed = elapsed;
                lastLegs = progress.legsCompleted;
            }
            char eta[32] = "--";
            if (ewmaLegsPerSec > 0.0 && progress.legsTotal >= progress.legsCompleted) {
                std::snprintf(eta, sizeof(eta), "%.0fs",
                              static_cast<double>(progress.legsTotal -
                                                  progress.legsCompleted) /
                                  ewmaLegsPerSec);
            }
            if (progress.boundary) {
                std::fprintf(stderr,
                             "[%zu/%zu] %s done (%zu/%zu legs: %zu replayed, "
                             "%zu executed, %u workers, ETA %s)\n",
                             progress.completed, progress.total,
                             progress.benchmark.c_str(), progress.legsCompleted,
                             progress.legsTotal, progress.legsReplayed,
                             progress.legsExecuted, progress.workers, eta);
            } else {
                // Throttled leg tick — no benchmark finished yet.
                std::fprintf(stderr,
                             "[%zu/%zu] %zu/%zu legs (%zu replayed, %zu executed, "
                             "%u workers, ETA %s)\n",
                             progress.completed, progress.total,
                             progress.legsCompleted, progress.legsTotal,
                             progress.legsReplayed, progress.legsExecuted,
                             progress.workers, eta);
            }
        };
    }

    // --telemetry-port: live exporter (GET /metrics, /progress, /healthz) on
    // a dedicated thread, started *before* the sweep so `voltcache top` and
    // Prometheus can watch it run. Port 0 binds an ephemeral port; the
    // chosen one is announced on stderr.
    std::optional<obs::ProgressBoard> board;
    std::optional<obs::TelemetryServer> telemetry;
    if (args.flags.contains("telemetry-port")) {
        board.emplace();
        telemetry.emplace(
            static_cast<std::uint16_t>(std::stoul(args.get("telemetry-port", "0"))),
            *board);
        std::fprintf(stderr, "telemetry: listening on 127.0.0.1:%u\n",
                     static_cast<unsigned>(telemetry->port()));
    }
    if (board.has_value()) {
        // Feed every tick to the board, then to the stderr printer (if any).
        auto chained = std::move(config.onProgress);
        config.onProgress = [&boardRef = *board,
                             chained](const SweepProgress& progress) {
            obs::ProgressBoard::Tick tick;
            tick.benchmarksCompleted = progress.completed;
            tick.benchmarksTotal = progress.total;
            tick.benchmark = progress.benchmark;
            tick.boundary = progress.boundary;
            tick.legsCompleted = progress.legsCompleted;
            tick.legsTotal = progress.legsTotal;
            tick.legsReplayed = progress.legsReplayed;
            tick.legsExecuted = progress.legsExecuted;
            tick.legsCached = progress.legsCached;
            tick.workers = progress.workers;
            boardRef.update(tick);
            if (chained) chained(progress);
        };
    }

    // --journal: bounded NDJSON leg lifecycle journal. Rings are sized
    // before runSweep computes its worker count, so mirror its sizing rule
    // (runSweep may clamp down to the leg count, never up).
    // --journal-max-bytes caps the file; at the cap it rotates to <path>.1.
    // The same leg-event stream also feeds the flight recorder's ring.
    std::optional<obs::LegJournal> journal;
    if (args.flags.contains("journal")) {
        unsigned maxWorkers = config.threads != 0 ? config.threads
                                                  : std::thread::hardware_concurrency();
        if (maxWorkers == 0) maxWorkers = 4;
        journal.emplace(args.get("journal", ""), maxWorkers + 1,
                        /*ringCapacity=*/4096, /*autoDrain=*/true,
                        std::stoull(args.get("journal-max-bytes", "0")));
    }
    if (journal.has_value() || flight != nullptr) {
        obs::LegJournal* journalPtr = journal.has_value() ? &*journal : nullptr;
        config.onLegEvent = [journalPtr, flight](const SweepLegEvent& event) {
            obs::JournalEvent line;
            switch (event.phase) {
                case SweepLegEvent::Phase::Enqueued:
                    line.phase = obs::JournalEvent::Phase::Enqueued;
                    break;
                case SweepLegEvent::Phase::Started:
                    line.phase = obs::JournalEvent::Phase::Started;
                    break;
                case SweepLegEvent::Phase::Finished:
                    line.phase = obs::JournalEvent::Phase::Finished;
                    break;
            }
            line.leg = static_cast<std::uint32_t>(event.leg);
            line.worker = event.worker;
            line.setBenchmark(event.benchmark);
            line.setScheme(schemeName(event.scheme));
            line.voltageMv = event.voltageMv;
            line.trial = event.trial;
            line.replayed = event.replayed;
            line.cached = event.cached;
            line.linkFailed = event.linkFailed;
            line.durationNs = event.durationNs;
            line.setFailCause(linkFailCauseName(event.failCause));
            line.traceHi = event.traceHi;
            line.traceLo = event.traceLo;
            line.spanId = event.spanId;
            if (flight != nullptr) flight->noteLegEvent(line);
            if (journalPtr != nullptr) {
                // Producer 0 is the coordinator (Enqueued); worker w uses 1+w.
                const std::size_t producer =
                    event.phase == SweepLegEvent::Phase::Enqueued ? 0
                                                                  : event.worker + 1;
                journalPtr->emit(producer, line);
            }
        };
    }
    if (flight != nullptr) {
        // Mirror progress ticks (and a bounded metrics snapshot) into the
        // black box so a crash dump shows how far the sweep got.
        auto chained = std::move(config.onProgress);
        config.onProgress = [flight, chained](const SweepProgress& progress) {
            obs::FlightProgress snap;
            snap.benchmarksCompleted = progress.completed;
            snap.benchmarksTotal = progress.total;
            snap.legsCompleted = progress.legsCompleted;
            snap.legsTotal = progress.legsTotal;
            snap.legsReplayed = progress.legsReplayed;
            snap.legsExecuted = progress.legsExecuted;
            snap.legsCached = progress.legsCached;
            snap.workers = progress.workers;
            flight->noteProgress(snap);
            flight->noteMetrics();
            if (chained) chained(progress);
        };
    }

    obs::TraceSink sink;
    std::optional<obs::ScopedTraceSink> traceGuard;
    if (args.flags.contains("trace")) traceGuard.emplace(&sink);

    const bool profiling = args.flags.contains("profile");
    if (profiling || board.has_value()) {
        // Spans feed --profile and the exporter's /progress attribution.
        obs::Profiler::reset();
        obs::Profiler::setEnabled(true);
    }
    const auto wallStart = std::chrono::steady_clock::now();

    // The trace scope makes obs::Span phase spans attribute to this job; it
    // must close before endJob so late spans never land in a closed trace.
    std::optional<obs::ScopedTraceContext> traceScope;
    if (traceJob) {
        obs::JobTraceStore::global().beginJob("sweep", traceContext);
        traceScope.emplace(traceContext);
    }

    const SweepResult result = runSweep(config);

    if (traceJob) {
        traceScope.reset();
        obs::JobTraceStore::global().endJob(traceContext);
        writeTextFile(args.get("trace-job", ""),
                      obs::JobTraceStore::global().toChromeJson("sweep"));
    }
    if (board.has_value()) board->finish();
    if (journal.has_value()) journal->close();

    const double wallSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wallStart)
            .count();
    if (profiling || board.has_value()) obs::Profiler::setEnabled(false);
    if (profiling) {
        ProfileExportMeta profileMeta;
        profileMeta.version = std::string(buildVersion());
        profileMeta.wallSeconds = wallSeconds;
        profileMeta.threads = config.threads;
        writeTextFile(args.get("profile", ""),
                      profileToJson(obs::Profiler::snapshot(),
                                    obs::MetricsRegistry::global().snapshot(),
                                    profileMeta));
    }

    if (args.flags.contains("trace")) {
        writeTextFile(args.get("trace", ""), sink.toChromeJson());
    }

    std::optional<analysis::CrosscheckReport> analytic;
    if (args.flags.contains("analytic-check")) {
        const double zThreshold = std::stod(args.get("check-z", "6"));
        analytic = analyticCrosscheck(result, config, zThreshold);
        std::fputs(analysis::formatReport(*analytic).c_str(), stdout);
    }

    if (args.flags.contains("json")) {
        SweepExportMeta meta;
        meta.version = std::string(buildVersion());
        meta.seed = config.baseSeed;
        meta.trials = config.trials;
        meta.scale = scaleName(config.scale);
        meta.benchmarks = config.benchmarks;
        if (meta.benchmarks.empty()) {
            for (const auto& info : benchmarkList()) meta.benchmarks.emplace_back(info.name);
        }
        if (analytic.has_value()) {
            meta.extensions = [&analytic](JsonWriter& json) {
                json.key("analytic");
                analysis::writeJson(json, *analytic);
            };
        }
        writeTextFile(args.get("json", ""), sweepResultToJson(result, meta));
    }

    TextTable table({"scheme", "voltage", "norm runtime", "L2/1k", "norm EPI",
                     "yield losses"});
    const std::vector<SchemeKind> schemes =
        config.schemes.empty() ? paperSchemes() : config.schemes;
    std::vector<OperatingPoint> points = config.points;
    if (points.empty()) {
        const auto low = DvfsTable::lowVoltagePoints();
        points.assign(low.begin(), low.end());
    }
    for (const SchemeKind scheme : schemes) {
        for (const auto& point : points) {
            const SweepCell& cell = result.cell(scheme, point.voltage);
            table.addRow({std::string(schemeName(scheme)),
                          formatDouble(point.voltage.millivolts(), 0) + "mV",
                          formatDouble(cell.normRuntime.mean(), 3),
                          formatDouble(cell.l2PerKilo.mean(), 1),
                          formatDouble(cell.normEpi.mean(), 3),
                          std::to_string(cell.linkFailures)});
        }
    }
    std::fputs(table.render().c_str(), stdout);
    // --telemetry-linger SECONDS: keep the exporter up after the sweep so an
    // external scraper that raced the run can still collect the final state
    // (ci.sh scrapes, then kills the process).
    if (telemetry.has_value() && args.flags.contains("telemetry-linger")) {
        std::this_thread::sleep_for(
            std::chrono::seconds(std::stoi(args.get("telemetry-linger", "0"))));
    }
    if (analytic.has_value() && !analytic->passed()) {
        std::fprintf(stderr,
                     "sweep FAILED the analytic cross-check (max z %.2f)\n",
                     analytic->maxZ());
        return 1;
    }
    return 0;
}

/// Render the closed-form FFW/BBR curves (no simulation): per-voltage word
/// failure probability, FFW window pmf/mean and yield at every minimum
/// window, and BBR placement success (exact + provable bounds) at the
/// requested section size. `--json FILE` exports the same numbers.
int cmdModel(const Args& args) {
    const SystemConfig system; // default Table I geometry
    const std::uint32_t lines = system.l1Org.lines();
    const std::uint32_t wordsPerLine = system.l1Org.wordsPerBlock();
    const auto need =
        static_cast<std::uint32_t>(std::stoul(args.get("need", "12")));
    const FailureModel model;

    std::vector<OperatingPoint> points;
    if (args.flags.contains("mv")) {
        points = parseMvList(args.get("mv", ""));
    } else {
        const auto paper = DvfsTable::paperPoints();
        points.assign(paper.begin(), paper.end());
    }

    TextTable table({"voltage", "p(word)", "E[window]", "yield w>=1", "yield w>=4",
                     "P(place " + std::to_string(need) + "w)", "lower", "upper"});
    JsonWriter json;
    json.beginObject();
    json.member("tool", "voltcache");
    json.member("kind", "model");
    json.member("version", buildVersion());
    json.member("lines", lines);
    json.member("wordsPerLine", wordsPerLine);
    json.member("needWords", need);
    json.key("points");
    json.beginArray();
    for (const OperatingPoint& point : points) {
        const auto ffw =
            analysis::FfwModel::at(model, point.voltage, lines, wordsPerLine);
        const auto bbr =
            analysis::BbrModel::at(model, point.voltage, lines * wordsPerLine);
        table.addRow({formatDouble(point.voltage.millivolts(), 0) + "mV",
                      formatDouble(ffw.pWord(), 9),
                      formatDouble(ffw.meanWindowWords(), 4),
                      formatDouble(ffw.yield(1), 6), formatDouble(ffw.yield(4), 6),
                      formatDouble(bbr.placementSuccessExact(need), 6),
                      formatDouble(bbr.placementSuccessLower(need), 6),
                      formatDouble(bbr.placementSuccessUpper(need), 6)});
        json.beginObject();
        json.member("mv",
                    static_cast<std::int64_t>(point.voltage.millivolts() + 0.5));
        json.member("pWord", ffw.pWord());
        json.key("ffw");
        json.beginObject();
        json.member("meanWindowWords", ffw.meanWindowWords());
        json.key("windowPmf");
        json.beginArray();
        for (const double p : ffw.windowPmf()) json.value(p);
        json.endArray();
        json.key("yieldByMinWindow");
        json.beginArray();
        for (std::uint32_t w = 0; w <= wordsPerLine; ++w) json.value(ffw.yield(w));
        json.endArray();
        json.endObject();
        json.key("bbr");
        json.beginObject();
        json.member("expectedTotalChunks", bbr.expectedTotalChunks());
        json.member("placementSuccessExact", bbr.placementSuccessExact(need));
        json.member("placementSuccessLower", bbr.placementSuccessLower(need));
        json.member("placementSuccessUpper", bbr.placementSuccessUpper(need));
        json.endObject();
        json.endObject();
    }
    json.endArray();
    json.endObject();

    std::printf("analytic FFW/BBR models: %ux%u-word L1, section need %u words\n",
                lines, wordsPerLine, need);
    std::fputs(table.render().c_str(), stdout);
    if (args.flags.contains("json")) writeTextFile(args.get("json", ""), json.str());
    return 0;
}

int cmdStats(const Args& args) {
    if (args.positional.empty()) throw std::runtime_error("stats: need a program");
    Module module = loadProgram(args.positional);
    Module bbrModule = module;
    applyBbrTransforms(bbrModule);

    SystemConfig config = legConfigFromArgs(args);

    // Observer multiplexing: the locality profiler and (optionally) the
    // trace-sink bridge watch the same run side by side.
    LocalityProfiler profiler;
    config.observers.push_back(&profiler);

    obs::TraceSink sink;
    std::optional<obs::ScopedTraceSink> traceGuard;
    std::optional<TraceSinkObserver> sinkObserver;
    if (args.flags.contains("trace")) {
        traceGuard.emplace(&sink);
        sinkObserver.emplace(sink);
        config.observers.push_back(&*sinkObserver);
    }

    const SystemResult result = simulateSystem(module, &bbrModule, config);
    profiler.finalize();

    if (args.flags.contains("trace")) {
        writeTextFile(args.get("trace", ""), sink.toChromeJson());
    }

    std::printf("program: %s   scheme: %s   %.0fmV / %.0fMHz   chip seed %llu\n",
                args.positional.c_str(), schemeName(config.scheme).data(),
                config.op.voltage.millivolts(), config.op.frequency.megahertz(),
                static_cast<unsigned long long>(config.faultMapSeed));
    if (result.linkFailed) {
        std::printf("BBR placement failed for this chip (yield loss)\n");
    } else {
        TextTable run({"metric", "value"});
        run.addRow({"instructions", std::to_string(result.run.instructions)});
        run.addRow({"cycles", std::to_string(result.run.cycles)});
        run.addRow({"IPC", formatDouble(result.run.ipc(), 3)});
        run.addRow({"runtime (ms)", formatDouble(result.runtimeSeconds * 1e3, 3)});
        run.addRow({"EPI (pJ)", formatDouble(result.epi * 1e12, 1)});
        run.addRow({"L2 / 1k instr", formatDouble(result.run.l2AccessesPerKilo(), 1)});
        run.addRow({"L1I miss ratio", formatDouble(result.icacheStats.missRatio(), 4)});
        run.addRow({"L1D miss ratio", formatDouble(result.dcacheStats.missRatio(), 4)});
        run.addRow({"spatial locality", formatDouble(profiler.meanSpatialLocality(), 3)});
        run.addRow({"word reuse rate", formatDouble(profiler.meanWordReuseRate(), 3)});
        if (result.linkStats.blocksPlaced > 0) {
            run.addRow({"link blocks", std::to_string(result.linkStats.blocksPlaced)});
            run.addRow({"link gap words", std::to_string(result.linkStats.gapWords)});
            run.addRow({"link scan restarts", std::to_string(result.linkStats.scanRestarts)});
            run.addRow({"link wrap-arounds", std::to_string(result.linkStats.wrapArounds)});
        }
        std::fputs(run.render().c_str(), stdout);
    }

    // The registry snapshot: everything the leg published, merged.
    const auto snapshot = obs::MetricsRegistry::global().snapshot();
    TextTable metrics({"metric", "labels", "value"});
    for (const auto& snap : snapshot) {
        std::string labels;
        for (const auto& [k, v] : snap.labels) {
            if (!labels.empty()) labels += ",";
            labels += k + "=" + v;
        }
        std::string value;
        switch (snap.kind) {
            case obs::MetricKind::Counter: value = std::to_string(snap.count); break;
            case obs::MetricKind::Gauge: value = formatDouble(snap.value, 6); break;
            case obs::MetricKind::Histogram:
                value = "n=" + std::to_string(snap.count) +
                        " mean=" + formatDouble(snap.value, 1);
                break;
        }
        metrics.addRow({snap.name, labels, value});
    }
    std::fputs(metrics.render().c_str(), stdout);

    if (args.flags.contains("json")) {
        JsonWriter json;
        json.beginObject();
        json.member("tool", "voltcache");
        json.member("kind", "stats");
        json.member("version", buildVersion());
        json.member("benchmark", args.positional);
        json.member("scheme", schemeName(config.scheme));
        json.member("mv",
                    static_cast<std::int64_t>(config.op.voltage.millivolts() + 0.5));
        json.member("seed", config.faultMapSeed);
        json.key("result");
        writeJson(json, result);
        json.member("spatialLocality", profiler.meanSpatialLocality());
        json.member("wordReuseRate", profiler.meanWordReuseRate());
        json.key("metrics");
        obs::writeMetrics(json, snapshot);
        json.endObject();
        writeTextFile(args.get("json", ""), json.str());
    }
    return result.linkFailed ? 1 : 0;
}

/// Human-readable rendering of a profile or sweep JSON artifact: per-span
/// self-times for `kind:"profile"`, the forensics block for `kind:"sweep"`.
int cmdProfile(const Args& args) {
    if (args.positional.empty()) throw std::runtime_error("profile: need a JSON file");
    std::ifstream in(args.positional);
    if (!in) throw std::runtime_error("cannot open '" + args.positional + "'");
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue doc = parseJson(text.str());
    const std::string kind = doc.stringOr("kind", "");

    if (kind == "profile") {
        const double wall = doc.numberOr("wallSeconds", 0.0);
        std::printf("profile: wall %.3fs, self-time coverage %.1f%% (%u threads)\n", wall,
                    100.0 * doc.numberOr("coverage", 0.0),
                    static_cast<unsigned>(doc.numberOr("threads", 0.0)));
        TextTable table({"span", "count", "total ms", "self ms", "self %"});
        if (const JsonValue* spans = doc.find("spans"); spans != nullptr) {
            for (const JsonValue& span : spans->items) {
                table.addRow({span.stringOr("name", "?"),
                              std::to_string(static_cast<std::uint64_t>(
                                  span.numberOr("count", 0.0))),
                              formatDouble(span.numberOr("totalNs", 0.0) * 1e-6, 1),
                              formatDouble(span.numberOr("selfNs", 0.0) * 1e-6, 1),
                              formatDouble(100.0 * span.numberOr("selfFrac", 0.0), 1)});
            }
        }
        std::fputs(table.render().c_str(), stdout);
        return 0;
    }

    if (kind == "sweep") {
        const JsonValue* forensics = doc.find("forensics");
        if (forensics == nullptr || forensics->items.empty()) {
            std::printf("no forensics block in '%s' (re-run the sweep with this build)\n",
                        args.positional.c_str());
            return 1;
        }
        TextTable table({"scheme", "voltage", "legs", "ffw recenters", "bbr blocks",
                         "yield losses"});
        for (const JsonValue& cell : forensics->items) {
            const JsonValue* ffw = cell.find("ffw");
            const JsonValue* bbr = cell.find("bbr");
            std::uint64_t losses = 0;
            if (const JsonValue* yieldLoss = cell.find("yieldLoss"); yieldLoss != nullptr) {
                for (const auto& [cause, count] : yieldLoss->members) {
                    losses += static_cast<std::uint64_t>(count.number);
                }
            }
            table.addRow(
                {cell.stringOr("scheme", "?"),
                 std::to_string(static_cast<int>(cell.numberOr("mv", 0.0))) + "mV",
                 std::to_string(static_cast<std::uint64_t>(cell.numberOr("legs", 0.0))),
                 ffw != nullptr ? std::to_string(static_cast<std::uint64_t>(
                                      ffw->numberOr("recenters", 0.0)))
                                : "-",
                 bbr != nullptr ? std::to_string(static_cast<std::uint64_t>(
                                      bbr->numberOr("blocksPlaced", 0.0)))
                                : "-",
                 std::to_string(losses)});
        }
        std::fputs(table.render().c_str(), stdout);
        // Per-cell yield-loss cause breakdown, where any occurred.
        for (const JsonValue& cell : forensics->items) {
            const JsonValue* yieldLoss = cell.find("yieldLoss");
            if (yieldLoss == nullptr || yieldLoss->members.empty()) continue;
            std::printf("yield losses for %s @ %dmV:", cell.stringOr("scheme", "?").c_str(),
                        static_cast<int>(cell.numberOr("mv", 0.0)));
            for (const auto& [cause, count] : yieldLoss->members) {
                std::printf(" %s=%llu", cause.c_str(),
                            static_cast<unsigned long long>(count.number));
            }
            std::printf("\n");
        }
        return 0;
    }

    throw std::runtime_error("unrecognized document kind '" + kind +
                             "' (expected \"profile\" or \"sweep\")");
}

/// Human-readable rendering of the PR 10 tracing artifacts: a job's span
/// tree (Chrome trace-event JSON from --trace-job or GET /trace/<job>), a
/// flight-recorder crash dump ("kind":"flight"), or the /trace index. The
/// positional is a file when one exists at that path, otherwise host:port of
/// a live telemetry endpoint (--job picks the job; without it, the index).
int cmdTrace(const Args& args) {
    if (args.positional.empty()) {
        throw std::runtime_error(
            "trace: need <host:port>, a trace JSON file, or a flight dump");
    }
    std::string body;
    if (std::ifstream in(args.positional); in) {
        std::ostringstream text;
        text << in.rdbuf();
        body = text.str();
    } else {
        const std::size_t colon = args.positional.rfind(':');
        if (colon == std::string::npos || colon + 1 >= args.positional.size()) {
            throw std::runtime_error("trace: '" + args.positional +
                                     "' is neither a readable file nor host:port");
        }
        const std::string host = args.positional.substr(0, colon);
        const auto port = static_cast<std::uint16_t>(
            std::stoul(args.positional.substr(colon + 1)));
        const std::string path = args.flags.contains("job")
                                     ? "/trace/" + args.get("job", "")
                                     : "/trace";
        body = net::httpGet(host, port, path);
    }
    const JsonValue doc = parseJson(body);
    const std::string kind = doc.stringOr("kind", "");

    if (kind == "traceIndex") {
        TextTable table({"job", "trace", "spans", "dropped", "state"});
        if (const JsonValue* jobs = doc.find("jobs"); jobs != nullptr) {
            for (const JsonValue& job : jobs->items) {
                table.addRow({job.stringOr("job", "?"), job.stringOr("trace", "?"),
                              std::to_string(static_cast<std::uint64_t>(
                                  job.numberOr("spans", 0.0))),
                              std::to_string(static_cast<std::uint64_t>(
                                  job.numberOr("droppedSpans", 0.0))),
                              [&job] {
                                  const JsonValue* open = job.find("open");
                                  return open != nullptr && open->asBool() ? "open"
                                                                           : "closed";
                              }()});
            }
        }
        std::fputs(table.render().c_str(), stdout);
        std::printf("(fetch one with `voltcache trace <host:port> --job <job>`)\n");
        return 0;
    }

    if (kind == "trace") {
        const JsonValue* open = doc.find("open");
        std::printf("trace: job=%s trace=%s spans=%llu dropped=%llu (%s)\n",
                    doc.stringOr("job", "?").c_str(),
                    doc.stringOr("trace", "?").c_str(),
                    static_cast<unsigned long long>(doc.numberOr("spanCount", 0.0)),
                    static_cast<unsigned long long>(
                        doc.numberOr("droppedSpans", 0.0)),
                    open != nullptr && open->asBool() ? "open" : "closed");
        const JsonValue* events = doc.find("traceEvents");
        if (events == nullptr || events->items.empty()) {
            std::printf("no spans recorded\n");
            return 0;
        }
        // Timeline rows relative to the job's first span; cached legs show a
        // zero-cost duration (the store-lookup wall time lives in wallNs).
        std::uint64_t legs = 0;
        std::uint64_t cached = 0;
        std::uint64_t replayed = 0;
        for (const JsonValue& event : events->items) {
            if (event.stringOr("cat", "").rfind("leg", 0) != 0) continue;
            ++legs;
            if (const JsonValue* eventArgs = event.find("args");
                eventArgs != nullptr) {
                if (const JsonValue* c = eventArgs->find("cached");
                    c != nullptr && c->asBool()) {
                    ++cached;
                }
                if (const JsonValue* r = eventArgs->find("replayed");
                    r != nullptr && r->asBool()) {
                    ++replayed;
                }
            }
        }
        std::printf("legs %llu (%llu replayed, %llu cached/zero-cost), "
                    "%zu spans total\n",
                    static_cast<unsigned long long>(legs),
                    static_cast<unsigned long long>(replayed),
                    static_cast<unsigned long long>(cached),
                    events->items.size());
        const auto limit =
            static_cast<std::size_t>(std::stoul(args.get("limit", "40")));
        TextTable table({"span", "worker", "start ms", "dur ms", "notes"});
        std::size_t shown = 0;
        for (const JsonValue& event : events->items) {
            if (shown == limit) break;
            ++shown;
            std::string notes;
            if (const JsonValue* eventArgs = event.find("args");
                eventArgs != nullptr) {
                const auto flag = [&notes, eventArgs](const char* name) {
                    const JsonValue* value = eventArgs->find(name);
                    if (value == nullptr || !value->asBool()) return;
                    if (!notes.empty()) notes += ",";
                    notes += name;
                };
                flag("replayed");
                flag("cached");
                flag("linkFailed");
            }
            table.addRow({event.stringOr("name", "?"),
                          std::to_string(static_cast<std::uint64_t>(
                              event.numberOr("tid", 0.0))),
                          formatDouble(event.numberOr("ts", 0.0) * 1e-3, 3),
                          formatDouble(event.numberOr("dur", 0.0) * 1e-3, 3),
                          notes});
        }
        std::fputs(table.render().c_str(), stdout);
        if (events->items.size() > shown) {
            std::printf("... %zu more spans (raise --limit, or load the JSON in "
                        "Perfetto)\n",
                        events->items.size() - shown);
        }
        return 0;
    }

    if (kind == "flight") {
        std::printf("flight dump: reason=%s%s%s\n",
                    doc.stringOr("reason", "?").c_str(),
                    doc.find("detail") != nullptr ? " detail=" : "",
                    doc.stringOr("detail", "").c_str());
        if (doc.find("job") != nullptr) {
            std::printf("job=%s trace=%s\n", doc.stringOr("job", "?").c_str(),
                        doc.stringOr("trace", "-").c_str());
        }
        if (const JsonValue* progress = doc.find("progress"); progress != nullptr) {
            std::printf("progress: %llu/%llu legs (%llu replayed, %llu executed, "
                        "%llu cached), %llu/%llu benchmarks, %u workers\n",
                        static_cast<unsigned long long>(
                            progress->numberOr("legsCompleted", 0.0)),
                        static_cast<unsigned long long>(
                            progress->numberOr("legsTotal", 0.0)),
                        static_cast<unsigned long long>(
                            progress->numberOr("legsReplayed", 0.0)),
                        static_cast<unsigned long long>(
                            progress->numberOr("legsExecuted", 0.0)),
                        static_cast<unsigned long long>(
                            progress->numberOr("legsCached", 0.0)),
                        static_cast<unsigned long long>(
                            progress->numberOr("benchmarksCompleted", 0.0)),
                        static_cast<unsigned long long>(
                            progress->numberOr("benchmarksTotal", 0.0)),
                        static_cast<unsigned>(progress->numberOr("workers", 0.0)));
        }
        if (const JsonValue* threads = doc.find("threads");
            threads != nullptr && !threads->items.empty()) {
            std::printf("active span stacks at dump time:\n");
            std::size_t index = 0;
            for (const JsonValue& thread : threads->items) {
                std::string stack;
                if (const JsonValue* spans = thread.find("spans");
                    spans != nullptr) {
                    for (const JsonValue& span : spans->items) {
                        if (!stack.empty()) stack += " > ";
                        stack += span.string;
                    }
                }
                std::printf("  thread %zu: %s\n", index++,
                            stack.empty() ? "(idle)" : stack.c_str());
            }
        }
        const JsonValue* events = doc.find("events");
        std::printf("events: %llu noted, %llu dropped, ring holds %zu\n",
                    static_cast<unsigned long long>(
                        doc.numberOr("eventsNoted", 0.0)),
                    static_cast<unsigned long long>(
                        doc.numberOr("eventsDropped", 0.0)),
                    events != nullptr ? events->items.size() : 0);
        if (events != nullptr && !events->items.empty()) {
            TextTable table({"seq", "ev", "leg", "worker", "benchmark", "scheme",
                             "mv", "trial", "dur ms", "outcome"});
            for (const JsonValue& event : events->items) {
                const JsonValue* duration = event.find("durationNs");
                table.addRow(
                    {std::to_string(
                         static_cast<std::uint64_t>(event.numberOr("seq", 0.0))),
                     event.stringOr("ev", "?"),
                     std::to_string(
                         static_cast<std::uint64_t>(event.numberOr("leg", 0.0))),
                     std::to_string(static_cast<std::uint64_t>(
                         event.numberOr("worker", 0.0))),
                     event.stringOr("benchmark", "?"), event.stringOr("scheme", "?"),
                     std::to_string(
                         static_cast<int>(event.numberOr("mv", 0.0))),
                     std::to_string(
                         static_cast<std::uint64_t>(event.numberOr("trial", 0.0))),
                     duration != nullptr
                         ? formatDouble(duration->asNumber() * 1e-6, 3)
                         : "-",
                     event.stringOr("outcome", "-")});
            }
            std::fputs(table.render().c_str(), stdout);
        }
        if (const JsonValue* metrics = doc.find("metrics");
            metrics != nullptr && !metrics->items.empty()) {
            std::printf("metrics mirror: %zu entries (newest refresh before the "
                        "dump)\n",
                        metrics->items.size());
        }
        return 0;
    }

    throw std::runtime_error("unrecognized document kind '" + kind +
                             "' (expected \"trace\", \"traceIndex\" or \"flight\")");
}

/// Refreshing terminal dashboard over a live telemetry endpoint: scrape
/// GET /progress (and optionally /metrics), render benchmarks / legs /
/// throughput / ETA / span attribution / counter rates, repeat until the
/// sweep reports done or --iterations runs out.
int cmdTop(const Args& args) {
    if (args.positional.empty()) {
        throw std::runtime_error("top: need host:port (e.g. 127.0.0.1:9090)");
    }
    const std::size_t colon = args.positional.rfind(':');
    if (colon == std::string::npos || colon + 1 >= args.positional.size()) {
        throw std::runtime_error("top: target must be host:port");
    }
    const std::string host = args.positional.substr(0, colon);
    const auto port =
        static_cast<std::uint16_t>(std::stoul(args.positional.substr(colon + 1)));
    const auto interval =
        std::chrono::milliseconds(std::stoul(args.get("interval", "1000")));
    std::uint64_t iterations = std::stoull(args.get("iterations", "0"));
    if (args.flags.contains("once")) iterations = 1;
    const bool live = iterations != 1;

    for (std::uint64_t i = 0; iterations == 0 || i < iterations; ++i) {
        if (i != 0) std::this_thread::sleep_for(interval);
        const std::string body = net::httpGet(host, port, "/progress");
        if (args.flags.contains("progress-out")) {
            writeTextFile(args.get("progress-out", ""), body);
        }
        if (args.flags.contains("metrics-out")) {
            writeTextFile(args.get("metrics-out", ""),
                          net::httpGet(host, port, "/metrics"));
        }
        const JsonValue doc = parseJson(body);
        const JsonValue* doneValue = doc.find("done");
        const bool done = doneValue != nullptr && doneValue->asBool();

        if (live) std::fputs("\x1b[2J\x1b[H", stdout); // clear + home per frame
        std::printf("voltcache top — %s:%u   elapsed %.1fs   %s\n",
                    host.c_str(), static_cast<unsigned>(port),
                    doc.numberOr("elapsedSeconds", 0.0),
                    done ? "done" : "running");
        if (const JsonValue* benchmarks = doc.find("benchmarks");
            benchmarks != nullptr) {
            std::printf("benchmarks  %llu/%llu   latest: %s\n",
                        static_cast<unsigned long long>(
                            benchmarks->numberOr("completed", 0.0)),
                        static_cast<unsigned long long>(
                            benchmarks->numberOr("total", 0.0)),
                        benchmarks->stringOr("latest", "-").c_str());
        }
        if (const JsonValue* legs = doc.find("legs"); legs != nullptr) {
            std::printf(
                "legs        %llu/%llu   (replayed %llu, executed %llu)\n",
                static_cast<unsigned long long>(legs->numberOr("completed", 0.0)),
                static_cast<unsigned long long>(legs->numberOr("total", 0.0)),
                static_cast<unsigned long long>(legs->numberOr("replayed", 0.0)),
                static_cast<unsigned long long>(legs->numberOr("executed", 0.0)));
        }
        const JsonValue* eta = doc.find("etaSeconds");
        std::printf("throughput  %.1f legs/s   workers %u   ETA %s\n",
                    doc.numberOr("ewmaLegsPerSec", 0.0),
                    static_cast<unsigned>(doc.numberOr("workers", 0.0)),
                    eta != nullptr && !eta->isNull()
                        ? (formatDouble(eta->asNumber(), 1) + "s").c_str()
                        : "--");
        if (const JsonValue* spans = doc.find("spans");
            spans != nullptr && !spans->items.empty()) {
            TextTable table({"span", "count", "total ms", "self ms", "self %"});
            for (const JsonValue& span : spans->items) {
                table.addRow({span.stringOr("name", "?"),
                              std::to_string(static_cast<std::uint64_t>(
                                  span.numberOr("count", 0.0))),
                              formatDouble(span.numberOr("totalNs", 0.0) * 1e-6, 1),
                              formatDouble(span.numberOr("selfNs", 0.0) * 1e-6, 1),
                              formatDouble(100.0 * span.numberOr("selfFrac", 0.0), 1)});
            }
            std::fputs(table.render().c_str(), stdout);
        }
        if (const JsonValue* rates = doc.find("rates");
            rates != nullptr && !rates->items.empty()) {
            TextTable table({"counter", "labels", "delta", "per sec"});
            for (const JsonValue& rate : rates->items) {
                std::string labels;
                if (const JsonValue* labelObject = rate.find("labels");
                    labelObject != nullptr) {
                    for (const auto& [k, v] : labelObject->members) {
                        if (!labels.empty()) labels += ",";
                        labels += k + "=" + v.string;
                    }
                }
                table.addRow({rate.stringOr("name", "?"), labels,
                              std::to_string(static_cast<std::uint64_t>(
                                  rate.numberOr("delta", 0.0))),
                              formatDouble(rate.numberOr("perSec", 0.0), 1)});
            }
            std::fputs(table.render().c_str(), stdout);
        }
        std::fflush(stdout);
        if (done) break;
    }
    return 0;
}

/// The running daemon, for the async-signal-safe SIGINT/SIGTERM handler
/// (Server::requestStop is two atomic stores — no locks, no allocation).
std::atomic<serve::Server*> g_server{nullptr};

void handleStopSignal(int /*signum*/) {
    serve::Server* server = g_server.load(std::memory_order_acquire);
    if (server != nullptr) server->requestStop();
}

int cmdServe(const Args& args) {
    serve::ServeOptions options;
    options.port = static_cast<std::uint16_t>(std::stoul(args.get("port", "0")));
    options.storeDirectory = args.get("store", "");
    options.storeBudgetBytes =
        std::stoull(args.get("store-budget", "256")) << 20; // MB → bytes
    options.threads = static_cast<unsigned>(std::stoul(args.get("threads", "0")));
    options.journalPath = args.get("journal", "");
    options.journalMaxBytes = std::stoull(args.get("journal-max-bytes", "0"));
    options.flightRecordPath = args.get("flight-record", "");
    if (args.flags.contains("idle-timeout")) {
        options.idleTimeout =
            std::chrono::milliseconds(std::stoul(args.get("idle-timeout", "600000")));
    }

    // --telemetry-port: same exporter as `sweep`, but long-lived — the board
    // is re-labelled per job (beginJob) so /progress always describes the
    // job currently on the executor.
    std::optional<obs::ProgressBoard> board;
    std::optional<obs::TelemetryServer> telemetry;
    if (args.flags.contains("telemetry-port")) {
        board.emplace();
        telemetry.emplace(
            static_cast<std::uint16_t>(std::stoul(args.get("telemetry-port", "0"))),
            *board);
        options.board = &*board;
        obs::Profiler::reset();
        obs::Profiler::setEnabled(true);
        std::fprintf(stderr, "telemetry: listening on 127.0.0.1:%u\n",
                     static_cast<unsigned>(telemetry->port()));
    }

    serve::Server server(options);
    g_server.store(&server, std::memory_order_release);
    struct sigaction action {};
    action.sa_handler = handleStopSignal;
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    std::fprintf(stderr, "serve: listening on 127.0.0.1:%u\n",
                 static_cast<unsigned>(server.port()));

    server.run();
    g_server.store(nullptr, std::memory_order_release);

    const serve::Server::Totals totals = server.totals();
    const serve::LegStore::Stats store = server.store().stats();
    std::printf("serve: drained after %llu connection(s), %llu job(s) "
                "(%llu rejected, %llu errored)\n",
                static_cast<unsigned long long>(totals.connections),
                static_cast<unsigned long long>(totals.jobsCompleted),
                static_cast<unsigned long long>(totals.jobsRejected),
                static_cast<unsigned long long>(totals.jobErrors));
    std::printf("store: %llu hits / %llu misses, %llu entries "
                "(%llu loaded, %llu rejected, %llu evicted)\n",
                static_cast<unsigned long long>(store.hits),
                static_cast<unsigned long long>(store.misses),
                static_cast<unsigned long long>(store.entries),
                static_cast<unsigned long long>(store.loaded),
                static_cast<unsigned long long>(store.rejected),
                static_cast<unsigned long long>(store.evictions));
    return 0;
}

int cmdSubmit(const Args& args) {
    if (args.positional.empty()) {
        throw std::runtime_error("submit: need host:port (e.g. 127.0.0.1:7420)");
    }
    const std::size_t colon = args.positional.rfind(':');
    if (colon == std::string::npos || colon + 1 >= args.positional.size()) {
        throw std::runtime_error("submit: target must be host:port");
    }
    const std::string host = args.positional.substr(0, colon);
    const auto port =
        static_cast<std::uint16_t>(std::stoul(args.positional.substr(colon + 1)));

    serve::JobRequest job;
    job.op = args.get("op", "sweep");
    job.id = args.get("id", "");
    job.benchmarks = args.get("benchmarks", "");
    job.schemes = args.get("schemes", "");
    job.scale = args.get("scale", "small");
    job.mv = args.get("mv", "");
    job.trials = static_cast<std::uint32_t>(
        std::stoul(args.get("trials", job.op == "run" ? "1" : "3")));
    job.threads = static_cast<unsigned>(std::stoul(args.get("threads", "0")));
    if (args.flags.contains("seed")) job.seed = std::stoull(args.get("seed", "0"));
    job.maxInstructions = std::stoull(args.get("max-instructions", "0"));
    job.progress = args.flags.contains("progress");
    // End-to-end tracing: the client mints the job's 128-bit trace id (or
    // forwards --trace-id) so the whole path — queue, executor, every leg —
    // is queryable afterwards at /trace/<id> or via `voltcache trace`.
    job.trace = args.get("trace-id", "");
    if (job.trace.empty()) {
        job.trace = obs::traceIdHex(
            obs::makeRootContext(job.id.empty() ? "submit" : job.id));
    } else if (obs::TraceContext probe; !obs::parseTraceIdHex(job.trace, probe)) {
        throw std::runtime_error("submit: --trace-id must be 32 hex chars");
    }

    // The receive timeout must cover the whole job, not one read.
    const auto timeout =
        std::chrono::milliseconds(std::stoul(args.get("timeout", "600000")));
    net::Socket socket = net::tcpConnect(host, port, timeout);
    if (!socket.sendAll(serve::jobToJson(job) + "\n")) {
        throw std::runtime_error("submit: send failed");
    }

    serve::LineReader reader(socket, serve::kMaxResponseLineBytes);
    std::string line;
    while (true) {
        const serve::LineReader::Status status = reader.next(line);
        if (status == serve::LineReader::Status::Timeout) {
            throw std::runtime_error("submit: timed out waiting for the server");
        }
        if (status != serve::LineReader::Status::Line) {
            throw std::runtime_error("submit: connection closed before the result");
        }
        const JsonValue event = parseJson(line);
        const std::string kind = event.stringOr("ev", "");
        if (kind == "accepted") {
            if (job.progress) {
                std::fprintf(stderr,
                             "submit: accepted (queue depth %llu, trace %s)\n",
                             static_cast<unsigned long long>(
                                 event.numberOr("queue", 0.0)),
                             event.stringOr("trace", job.trace).c_str());
            }
            continue;
        }
        if (kind == "progress") {
            std::fprintf(stderr, "submit: %.0f/%.0f legs (%.0f cached)\n",
                         event.numberOr("legsCompleted", 0.0),
                         event.numberOr("legsTotal", 0.0),
                         event.numberOr("legsCached", 0.0));
            continue;
        }
        if (kind == "error") {
            std::fprintf(stderr, "submit: server error: %s\n",
                         event.stringOr("message", "?").c_str());
            return 1;
        }
        if (kind != "result") continue;

        // The next line is the raw sweep document, framed by "bytes".
        const auto documentBytes =
            static_cast<std::size_t>(event.numberOr("bytes", 0.0));
        std::string document;
        if (reader.next(document) != serve::LineReader::Status::Line) {
            throw std::runtime_error("submit: document line missing");
        }
        if (document.size() != documentBytes) {
            throw std::runtime_error("submit: document framing mismatch (" +
                                     std::to_string(document.size()) + " vs " +
                                     std::to_string(documentBytes) + " bytes)");
        }
        if (args.flags.contains("json")) {
            // writeTextFile appends the same trailing newline as cmdSweep,
            // keeping the artifact byte-identical to the direct path.
            writeTextFile(args.get("json", ""), document);
        }
        const bool ok = [&event] {
            const JsonValue* value = event.find("ok");
            return value == nullptr || value->asBool();
        }();
        std::printf("submit: id=%s ok=%d legs=%llu cached=%llu hits=%llu "
                    "misses=%llu hitRate=%.4f elapsed=%.3fs trace=%s\n",
                    event.stringOr("id", "").c_str(), ok ? 1 : 0,
                    static_cast<unsigned long long>(event.numberOr("legs", 0.0)),
                    static_cast<unsigned long long>(
                        event.numberOr("legsCached", 0.0)),
                    static_cast<unsigned long long>(event.numberOr("storeHits", 0.0)),
                    static_cast<unsigned long long>(
                        event.numberOr("storeMisses", 0.0)),
                    event.numberOr("hitRate", 0.0),
                    event.numberOr("elapsedSeconds", 0.0),
                    event.stringOr("trace", job.trace).c_str());
        return ok ? 0 : 1;
    }
}

int usage() {
    std::fprintf(stderr,
                 "usage: voltcache <command> [options]\n"
                 "  run <prog.s|benchmark> [--scheme S] [--mv V] [--seed N]\n"
                 "      [--json FILE] [--trace FILE]\n"
                 "  stats <prog.s|benchmark> [--scheme S] [--mv V] [--seed N]\n"
                 "      [--json FILE] [--trace FILE]\n"
                 "  verify <prog.s|benchmark> [--mv V] [--seed N]\n"
                 "  disasm <prog.s|benchmark> [--bbr]\n"
                 "  faultmap [--mv V] [--seed N] [-o FILE]\n"
                 "  yield [--bits N] [--target Y]\n"
                 "  sweep [--trials N] [--benchmarks a,b,...] [--scale S] [--threads N]\n"
                 "      [--max-instructions N] [--mv V1,V2,...] [--json FILE]\n"
                 "      [--trace FILE] [--progress]\n"
                 "      [--profile FILE]  (self-profile: per-phase span times + metrics)\n"
                 "      [--no-replay]  (disable the record-once/replay-many fast path;\n"
                 "       results are bit-identical either way)\n"
                 "      [--batch N]  (lanes per replay batch; 0 = engine default 32)\n"
                 "      [--no-batch]  (replay each leg individually instead of batching\n"
                 "       trials through one decoded tape; bit-identical either way)\n"
                 "      [--analytic-check] [--check-z Z]  (gate the MC result against\n"
                 "       the closed-form FFW/BBR models; nonzero exit on divergence)\n"
                 "      [--corrupt-mapgen SCALE]  (deliberately scale the sampled fault\n"
                 "       rate — the analytic gate's negative control)\n"
                 "      [--telemetry-port N]  (serve GET /metrics /progress /healthz on\n"
                 "       127.0.0.1:N while the sweep runs; 0 = ephemeral port)\n"
                 "      [--telemetry-linger SECONDS]  (keep the exporter up after the\n"
                 "       sweep so external scrapers can collect the final state)\n"
                 "      [--journal FILE]  (NDJSON leg lifecycle journal: one line per\n"
                 "       enqueue/start/finish; bounded, drops rather than stalls)\n"
                 "      [--journal-max-bytes N]  (rotate the journal to FILE.1 at N\n"
                 "       bytes; 0 = unbounded)\n"
                 "      [--trace-job FILE]  (end-to-end job tracing: mint a trace id,\n"
                 "       stamp every leg with its deterministic span, write the span\n"
                 "       tree as Chrome trace JSON — render with `voltcache trace`)\n"
                 "      [--flight-record FILE]  (async-signal-safe crash flight\n"
                 "       recorder: recent leg events + progress + metrics + span\n"
                 "       stacks, dumped on SIGSEGV/SIGABRT/contract failure)\n"
                 "      [--fail-at-leg N]  (deliberately fail a contract check inside\n"
                 "       the Nth leg — the flight recorder's negative control)\n"
                 "  top <host:port> [--interval MS] [--iterations N] [--once]\n"
                 "      [--metrics-out FILE] [--progress-out FILE]\n"
                 "      (refreshing dashboard over a live --telemetry-port endpoint)\n"
                 "  serve [--port P] [--store DIR] [--store-budget MB] [--threads N]\n"
                 "      [--journal FILE] [--journal-max-bytes N] [--telemetry-port N]\n"
                 "      [--flight-record FILE] [--idle-timeout MS]\n"
                 "      (sweep-as-a-service daemon with a content-addressed leg-result\n"
                 "       store; SIGINT/SIGTERM drain gracefully; every job's span tree\n"
                 "       is served at GET /trace/<job> on the telemetry port)\n"
                 "  submit <host:port> [--op sweep|run|verify] [--trials N]\n"
                 "      [--benchmarks a,b,...] [--schemes a,b,...] [--scale S]\n"
                 "      [--mv V1,V2,...] [--threads N] [--seed N] [--max-instructions N]\n"
                 "      [--id LABEL] [--json FILE] [--progress] [--timeout MS]\n"
                 "      [--trace-id HEX32]  (send one job to a running serve daemon;\n"
                 "       --json receives the byte-identical sweep document; the job's\n"
                 "       trace id is minted client-side and echoed in the summary)\n"
                 "  trace <host:port | trace.json | flight.json> [--job J] [--limit N]\n"
                 "      (render a job's span tree or a flight-recorder crash dump;\n"
                 "       host:port fetches /trace or /trace/<--job> from a live\n"
                 "       telemetry endpoint)\n"
                 "  model [--mv V1,V2,...] [--need WORDS] [--json FILE]\n"
                 "      (closed-form FFW/BBR curves, no simulation)\n"
                 "  profile <profile.json|sweep.json>  (render span times / forensics)\n"
                 "  list\n");
    return 2;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    const std::string command = argv[1];
    try {
        const Args args = parseArgs(argc, argv, 2);
        if (command == "run") return cmdRun(args);
        if (command == "stats") return cmdStats(args);
        if (command == "verify") return cmdVerify(args);
        if (command == "disasm") return cmdDisasm(args);
        if (command == "faultmap") return cmdFaultmap(args);
        if (command == "yield") return cmdYield(args);
        if (command == "sweep") return cmdSweep(args);
        if (command == "top") return cmdTop(args);
        if (command == "serve") return cmdServe(args);
        if (command == "submit") return cmdSubmit(args);
        if (command == "model") return cmdModel(args);
        if (command == "profile") return cmdProfile(args);
        if (command == "trace") return cmdTrace(args);
        if (command == "list") return cmdList();
        return usage();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "voltcache %s: %s\n", command.c_str(), e.what());
        return 1;
    }
}
