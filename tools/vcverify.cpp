// vcverify — static BBR image verifier and module lint.
//
// Proves, before any simulation, the paper's BBR guarantee: every
// instruction word reachable from the entry point maps to a fault-free
// I-cache word in direct-mapped mode. Also lints the module for the
// ill-formed shapes the linker/runtime would otherwise discover late.
//
//   vcverify <prog.s|benchmark> [options]
//     --mv V            voltage for generated fault maps (default 400)
//     --seed N          fault-map seed used for linking (default 1)
//     --map FILE        load the link fault map from FILE
//     --verify-seed N   prove against a different generated map (mismatch check)
//     --verify-map FILE prove against a map loaded from FILE
//     --scale S         benchmark input scale: tiny|small|reference (default tiny)
//     --no-transform    skip the BBR code transformations
//     --conventional    link contiguously (no BBR placement); prover still runs
//     --lint-only       lint the module and exit without linking
//     --max-block W     override the lint block-size bound
//
//   exit 0  verified: lint clean (no errors) and placement proven
//   exit 1  rejected: lint errors or placement violations (diagnostics on stdout)
//   exit 2  usage or I/O error
//   exit 3  link failure — no fault-free chunk fits (a Monte Carlo yield loss)
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "analysis/verify.h"
#include "compiler/passes.h"
#include "faults/fault_map_io.h"
#include "isa/assembler.h"
#include "power/dvfs.h"
#include "workload/workload.h"

using namespace voltcache;

namespace {

struct Args {
    std::string positional;
    std::map<std::string, std::string> flags;

    [[nodiscard]] std::string get(const std::string& key, const std::string& fallback) const {
        const auto it = flags.find(key);
        return it != flags.end() ? it->second : fallback;
    }
    [[nodiscard]] bool has(const std::string& key) const { return flags.contains(key); }
};

Args parseArgs(int argc, char** argv) {
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        if (token.rfind("--", 0) == 0) {
            const std::string key = token.substr(2);
            if (key == "no-transform" || key == "conventional" || key == "lint-only") {
                args.flags[key] = "1";
                continue;
            }
            if (key != "mv" && key != "seed" && key != "map" && key != "verify-seed" &&
                key != "verify-map" && key != "scale" && key != "max-block") {
                throw std::runtime_error("unknown flag '" + token + "'");
            }
            if (i + 1 >= argc) throw std::runtime_error("flag " + token + " needs a value");
            args.flags[key] = argv[++i];
        } else if (args.positional.empty()) {
            args.positional = token;
        } else {
            throw std::runtime_error("unexpected argument '" + token + "'");
        }
    }
    return args;
}

double parseNumber(const std::string& flag, const std::string& value) {
    std::size_t used = 0;
    double parsed = 0;
    try {
        parsed = std::stod(value, &used);
    } catch (const std::exception&) {
        used = 0;
    }
    if (used != value.size() || value.empty()) {
        throw std::runtime_error("--" + flag + ": not a number: '" + value + "'");
    }
    return parsed;
}

WorkloadScale scaleByName(const std::string& name) {
    if (name == "tiny") return WorkloadScale::Tiny;
    if (name == "small") return WorkloadScale::Small;
    if (name == "reference") return WorkloadScale::Reference;
    throw std::runtime_error("unknown scale '" + name + "'");
}

Module loadProgram(const std::string& source, WorkloadScale scale) {
    for (const auto& info : benchmarkList()) {
        if (info.name == source) return buildBenchmark(source, scale);
    }
    std::ifstream in(source);
    if (!in) throw std::runtime_error("cannot open '" + source + "'");
    std::ostringstream text;
    text << in.rdbuf();
    return assemble(text.str());
}

FaultMap loadMap(const std::string& path) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open fault map '" + path + "'");
    return loadFaultMap(in);
}

FaultMap generateMap(double millivolts, std::uint64_t seed) {
    Rng rng(seed);
    const FaultMapGenerator generator;
    return generator.generate(rng, Voltage::fromMillivolts(millivolts), 1024, 8);
}

int usage() {
    std::fprintf(stderr,
                 "usage: vcverify <prog.s|benchmark> [--mv V] [--seed N] [--map FILE]\n"
                 "                [--verify-seed N] [--verify-map FILE] [--scale S]\n"
                 "                [--no-transform] [--conventional] [--lint-only]\n"
                 "                [--max-block W]\n"
                 "exit: 0 verified, 1 rejected, 2 usage/I-O error, 3 link failure\n");
    return 2;
}

int run(const Args& args) {
    Module module = loadProgram(args.positional, scaleByName(args.get("scale", "tiny")));
    const bool bbr = !args.has("conventional");
    if (!args.has("no-transform")) applyBbrTransforms(module);

    const double mv = parseNumber("mv", args.get("mv", "400"));
    const FaultMap linkMap =
        args.has("map")
            ? loadMap(args.get("map", ""))
            : generateMap(mv, static_cast<std::uint64_t>(
                                  parseNumber("seed", args.get("seed", "1"))));

    analysis::LintOptions lintOptions;
    lintOptions.bbrMode = bbr;
    lintOptions.maxBlockWords =
        args.has("max-block")
            ? static_cast<std::uint32_t>(
                  parseNumber("max-block", args.get("max-block", "0")))
            : analysis::maxPlaceableBlockWords(linkMap);
    const auto findings = analysis::lintModule(module, lintOptions);
    std::fputs(analysis::formatFindings(findings).c_str(), stdout);
    const bool lintFailed = analysis::hasLintErrors(findings);

    if (args.has("lint-only")) {
        std::printf("lint: %zu finding(s), %s\n", findings.size(),
                    lintFailed ? "REJECTED" : "ok");
        return lintFailed ? 1 : 0;
    }

    LinkOptions linkOptions;
    linkOptions.bbrPlacement = bbr;
    if (bbr) linkOptions.icacheFaultMap = &linkMap;
    std::optional<LinkOutput> out;
    try {
        out = link(module, linkOptions);
    } catch (const LinkError& e) {
        std::printf("link failure (yield loss): %s\n", e.what());
        return 3;
    }

    const FaultMap verifyMap =
        args.has("verify-map")
            ? loadMap(args.get("verify-map", ""))
            : (args.has("verify-seed")
                   ? generateMap(mv, static_cast<std::uint64_t>(parseNumber(
                                         "verify-seed", args.get("verify-seed", "1"))))
                   : linkMap);

    const analysis::PlacementProof proof =
        analysis::provePlacement(out->image, verifyMap, &module);
    std::fputs(analysis::formatProof(proof).c_str(), stdout);
    std::printf("%s: %u reachable words over %u blocks (%u dead blocks, %u dead words), "
                "%zu violation(s), %u faulty cache words\n",
                proof.verified && !lintFailed ? "VERIFIED" : "REJECTED",
                proof.reachableWords, proof.reachableBlocks, proof.deadBlocks,
                proof.deadWords, proof.violations.size(), verifyMap.totalFaultyWords());
    return proof.verified && !lintFailed ? 0 : 1;
}

} // namespace

int main(int argc, char** argv) {
    if (argc < 2) return usage();
    try {
        const Args args = parseArgs(argc, argv);
        if (args.positional.empty()) return usage();
        return run(args);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "vcverify: %s\n", e.what());
        return 2;
    }
}
