#!/usr/bin/env sh
# Run clang-tidy (config: .clang-tidy at the repo root) over the library and
# tool sources. Usage:
#
#   tools/run_tidy.sh [build-dir] [extra clang-tidy args...]
#
# The build dir must have a compile_commands.json; the script configures one
# with CMAKE_EXPORT_COMPILE_COMMANDS=ON if it is missing. The repo config
# sets WarningsAsErrors to '*', so ANY finding from the enabled check groups
# (bugprone-*, performance-*, concurrency-*, select modernize/readability)
# makes this script exit nonzero — the tree must stay warning-free. Exits 0
# with a notice when clang-tidy is not installed (CI images without LLVM
# skip the pass rather than fail).
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
[ $# -gt 0 ] && shift

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" > /dev/null 2>&1; then
    echo "run_tidy: $TIDY not found in PATH; skipping (install clang-tidy to enable)"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_tidy: generating compile_commands.json in $build_dir"
    cmake -B "$build_dir" -S "$repo_root" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# All first-party translation units; benchmarks/tests inherit fixes through
# the headers they include.
files=$(find "$repo_root/src" "$repo_root/tools" "$repo_root/examples" \
        -name '*.cpp' | sort)

echo "run_tidy: checking $(printf '%s\n' "$files" | wc -l) files"
exec "$TIDY" -p "$build_dir" --quiet "$@" $files
